package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/reducer"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/tuple"
	"acyclicjoin/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:       "E19",
		Artifact: "cost structure (Õ decomposition)",
		Title:    "Phase breakdown: where Algorithm 1/2's I/Os go (sort vs scan vs NLJ)",
		Run:      runE19,
	})
	Register(&Experiment{
		ID:       "E20",
		Artifact: "Section 2.3 (heavy/light split) — ablation",
		Title:    "Ablation: Algorithm 2 with the heavy/light split disabled, on skew",
		Run:      runE20,
	})
	Register(&Experiment{
		ID:       "E21",
		Artifact: "Table 1 M-dependence",
		Title:    "Memory sweep: L3 worst-case I/O scales as 1/M",
		Run:      runE21,
	})
	Register(&Experiment{
		ID:       "E22",
		Artifact: "full reduction preprocessing — ablation",
		Title:    "Ablation: running on dangling-heavy inputs with and without reduction",
		Run:      runE22,
	})
}

func runE19(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E19: per-phase I/O breakdown (innermost phase label wins)",
		Header: []string{"workload", "alg", "phase", "reads", "writes", "share"},
	}
	type runCase struct {
		name  string
		setup func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance)
		alg   string
		run   func(g *hypergraph.Graph, in relation.Instance) error
	}
	n := p.M * 2 * p.Scale
	cases := []runCase{
		{
			name: "L3 worst",
			setup: func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
				g, in := workload.Line3WorstCase(d, n, n)
				return g, in
			},
			alg: "Algorithm 1",
			run: func(g *hypergraph.Graph, in relation.Instance) error {
				return core.Line3(g, in, func(tuple.Assignment) {})
			},
		},
		{
			name: "L3 worst",
			setup: func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
				g, in := workload.Line3WorstCase(d, n, n)
				return g, in
			},
			alg: "Algorithm 2 (greedy)",
			run: func(g *hypergraph.Graph, in relation.Instance) error {
				_, err := core.Run(g, in, func(tuple.Assignment) {},
					core.Options{Strategy: core.StrategySmallest, AssumeReduced: true})
				return err
			},
		},
		{
			name: "L3 zipf",
			setup: func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
				rng := rand.New(rand.NewSource(p.Seed + 19))
				g := hypergraph.Line(3)
				in := relation.Instance{
					0: workload.ZipfPairs(d, rng, 0, 1, n, n, n, 1.2),
					1: workload.ZipfPairs(d, rng, 1, 2, n, n, n, 1.2),
					2: workload.ZipfPairs(d, rng, 2, 3, n, n, n, 1.2),
				}
				return g, in
			},
			alg: "Algorithm 2 (greedy) after reduce",
			run: func(g *hypergraph.Graph, in relation.Instance) error {
				red, err := reducer.FullReduce(g, in)
				if err != nil {
					return err
				}
				_, err = core.Run(g, red, func(tuple.Assignment) {},
					core.Options{Strategy: core.StrategySmallest, AssumeReduced: true})
				return err
			},
		},
	}
	for _, c := range cases {
		d := newDisk(p)
		d.EnablePhases()
		g, in := c.setup(d)
		d.ResetStats()
		d.ResetPhases()
		if err := c.run(g, in); err != nil {
			return nil, err
		}
		phases := d.PhaseStats()
		total := d.Stats().IOs()
		var names []string
		for ph := range phases {
			names = append(names, ph)
		}
		sort.Strings(names)
		for _, ph := range names {
			s := phases[ph]
			share := "-"
			if total > 0 {
				share = fmt.Sprintf("%.0f%%", 100*float64(s.IOs())/float64(total))
			}
			t.AddRow(c.name, c.alg, ph, s.Reads, s.Writes, share)
		}
	}
	t.Notes = append(t.Notes,
		"'sort' is the log_{M/B} overhead the paper's Õ suppresses; 'nested-loop' is the output-proportional work the bounds charge")
	return t, nil
}

func runE20(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E20: heavy/light split ablation on skewed L3 (one dominant hub value)",
		Header: []string{"hub fraction", "variant", "IOs", "results"},
	}
	// The split's win is Σ_a N1|a·N2|a vs (N1/M)·N2: per HEAVY value the
	// recursion touches only R2's restriction view, while the no-split
	// variant scans all of R2 once per M-chunk regardless. So the instance
	// aligns skew adversarially: R1's hub value v1=0 has a TINY R2 group,
	// while R2 is large on other values. At 0% skew every value is light
	// and both variants legitimately scan R2 per chunk (that cost is inside
	// the N1N2/(MB) bound); as the hub grows, only the split avoids the
	// scans. Left unreduced deliberately: reduction would strip R2's bulk.
	n := p.M * 8 * p.Scale
	for _, hubPct := range []int{0, 50, 90} {
		build := func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
			g := hypergraph.Line(3)
			rng := rand.New(rand.NewSource(p.Seed + int64(hubPct)))
			b1 := relation.NewBuilder(d, tuple.Schema{0, 1})
			for i := 0; i < n; i++ {
				v := int64(1 + rng.Intn(4*n))
				if rng.Intn(100) < hubPct {
					v = 0 // the hub join value
				}
				b1.Add(tuple.Tuple{int64(i), v})
			}
			b2 := relation.NewBuilder(d, tuple.Schema{1, 2})
			for i := 0; i < 8; i++ {
				b2.Add(tuple.Tuple{0, int64(i % 64)}) // tiny hub group
			}
			for i := 0; i < 4*n; i++ {
				b2.Add(tuple.Tuple{int64(1 + rng.Intn(4*n)), int64(rng.Intn(64))})
			}
			in := relation.Instance{
				0: b1.Finish(),
				1: b2.Finish(),
				2: workload.UniformPairs(d, rng, 2, 3, 64, 64, 512),
			}
			return g, in
		}
		var base int64
		for _, variant := range []struct {
			name    string
			disable bool
		}{{"with split (paper)", false}, {"no split (ablation)", true}} {
			d := newDisk(p)
			g, in := build(d)
			d.ResetStats()
			var res int64
			r, err := core.Run(g, in, countEmit(&res), core.Options{
				Strategy:          core.StrategySmallest,
				DisableHeavySplit: variant.disable,
			})
			if err != nil {
				return nil, err
			}
			if variant.disable && res != base {
				return nil, fmt.Errorf("E20: ablation changed results: %d vs %d", res, base)
			}
			base = res
			t.AddRow(fmt.Sprintf("%d%%", hubPct), variant.name, r.ExecStats.IOs(), res)
		}
	}
	t.Notes = append(t.Notes,
		"crossover: at 0% skew the split pays its bookkeeping (the light-part rewrite) for nothing; as the hub grows, only the split avoids re-scanning R2 per chunk and wins",
		"both variants compute identical results at every point")
	return t, nil
}

func runE21(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E21: L3 worst case, fixed N, sweeping M: I/O * M should be flat",
		Header: []string{"M", "IOs", "bound N^2/(MB)", "ratio", "IOs*M"},
	}
	n := 2048 * p.Scale
	for _, m := range []int{64, 128, 256, 512} {
		d := newBackendDisk(p, extmem.Config{M: m, B: p.B})
		g, in := workload.Line3WorstCase(d, n, n)
		var res int64
		st, err := measure(d, func() error { return core.Line3(g, in, countEmit(&res)) })
		if err != nil {
			return nil, err
		}
		bound := float64(n) * float64(n) / (float64(m) * float64(p.B))
		t.AddRow(m, st.IOs(), bound, Ratio(st.IOs(), bound), st.IOs()*int64(m))
	}
	t.Notes = append(t.Notes,
		"while the output term N²/(MB) dominates, doubling M halves the I/O (Table 1's denominators); at large M the linear and sort terms take over and IOs*M bends upward")
	return t, nil
}

func runE22(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E22: full-reduction ablation on dangling-heavy L4 inputs",
		Header: []string{"dangling fraction", "variant", "IOs", "results"},
	}
	n := p.M * 4 * p.Scale
	for _, danglePct := range []int{0, 80} {
		build := func(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
			g := hypergraph.Line(4)
			rng := rand.New(rand.NewSource(p.Seed + int64(danglePct)))
			in := relation.Instance{}
			// A live core of values [0,live) that joins through; dangling
			// tuples use values >= live that never match downstream.
			live := 48
			for i := 0; i < 4; i++ {
				b := relation.NewBuilder(d, tuple.Schema{i, i + 1})
				for k := 0; k < n; k++ {
					lo, hi := int64(rng.Intn(live)), int64(rng.Intn(live))
					if rng.Intn(100) < danglePct {
						hi = int64(live + rng.Intn(n)) // right end dangles
					}
					b.Add(tuple.Tuple{lo, hi})
				}
				in[i] = b.Finish()
			}
			// The last relation's right attribute is unique; dangling there
			// means values whose LEFT side never matches, so flip roles.
			return g, in
		}
		var want int64 = -1
		for _, variant := range []struct {
			name   string
			reduce bool
		}{{"with full reduce (paper)", true}, {"no reduce (ablation)", false}} {
			d := newDisk(p)
			g, in := build(d)
			d.ResetStats()
			work := in
			if variant.reduce {
				red, err := reducer.FullReduce(g, in)
				if err != nil {
					return nil, err
				}
				work = red
			}
			var res int64
			r, err := core.Run(g, work, countEmit(&res), core.Options{
				Strategy:      core.StrategySmallest,
				AssumeReduced: variant.reduce,
			})
			if err != nil {
				return nil, err
			}
			if want >= 0 && res != want {
				return nil, fmt.Errorf("E22: reduction changed results: %d vs %d", res, want)
			}
			want = res
			total := d.Stats().IOs()
			_ = r
			t.AddRow(fmt.Sprintf("%d%%", danglePct), variant.name, total, res)
		}
	}
	t.Notes = append(t.Notes,
		"reduction costs a few sorted passes but shrinks everything downstream; on dangling-heavy inputs it pays for itself",
		"results are identical either way: correctness never depends on reduction")
	return t, nil
}
