package harness

import (
	"fmt"
	"math"
	"math/rand"

	"acyclicjoin/internal/baseline"
	"acyclicjoin/internal/cover"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/tuple"
	"acyclicjoin/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:       "E16",
		Artifact: "Lemma 2; Algorithm 6",
		Title:    "Cover integrality on random acyclic queries; greedy == exact",
		Run:      runE16,
	})
	Register(&Experiment{
		ID:       "E18",
		Artifact: "Table 1, internal-memory column",
		Title:    "Internal memory: Generic Join ops vs the AGM bound",
		Run:      runE18,
	})
}

func randomAcyclicGraph(rng *rand.Rand, nEdges int) *hypergraph.Graph {
	attr := 0
	edges := make([]*hypergraph.Edge, nEdges)
	for i := 0; i < nEdges; i++ {
		edges[i] = &hypergraph.Edge{ID: i, Name: fmt.Sprintf("R%d", i)}
	}
	for i := 1; i < nEdges; i++ {
		par := rng.Intn(i)
		edges[i].Attrs = append(edges[i].Attrs, attr)
		edges[par].Attrs = append(edges[par].Attrs, attr)
		attr++
	}
	for i := 0; i < nEdges; i++ {
		for k := rng.Intn(3); k > 0; k-- {
			edges[i].Attrs = append(edges[i].Attrs, attr)
			attr++
		}
		if len(edges[i].Attrs) == 0 {
			edges[i].Attrs = append(edges[i].Attrs, attr)
			attr++
		}
	}
	return hypergraph.MustNew(edges)
}

func runE16(p Params) (*Table, error) {
	p = p.WithDefaults()
	rng := rand.New(rand.NewSource(p.Seed + 16))
	t := &Table{
		Title:  "E16: Lemma 2 (integral covers) and Algorithm 6 minimality",
		Header: []string{"edges", "trials", "integral LP covers", "greedy == exact"},
	}
	for _, nEdges := range []int{2, 4, 6, 8} {
		trials := 50
		integral, greedyOK := 0, 0
		for tr := 0; tr < trials; tr++ {
			g := randomAcyclicGraph(rng, nEdges)
			sizes := cover.Sizes{}
			for _, e := range g.Edges() {
				sizes[e.ID] = float64(1 + rng.Intn(100000))
			}
			x, _, err := cover.Fractional(g, sizes)
			if err != nil {
				return nil, err
			}
			if cover.IsIntegral(x) {
				integral++
			}
			if len(cover.GreedyMinCover(g)) == len(cover.ExactMinCover(g)) {
				greedyOK++
			}
		}
		t.AddRow(nEdges, trials, integral, greedyOK)
	}
	t.Notes = append(t.Notes, "both columns must equal the trial count: Lemma 2 and Algorithm 6 hold on every random acyclic query")
	return t, nil
}

func runE18(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E18: internal-memory worst-case optimal join (Table 1 internal column)",
		Header: []string{"query", "N", "GenericJoin ops", "AGM bound", "ops/AGM", "results"},
	}
	// L3 worst case: AGM = N1*N3.
	{
		n := p.M * 2 * p.Scale
		d := newDisk(p)
		g, in := workload.Line3WorstCase(d, n, n)
		var res int64
		ops, err := baseline.GenericJoin(g, in, countEmit(&res))
		if err != nil {
			return nil, err
		}
		agm := float64(n) * float64(n)
		t.AddRow("L3 worst", n, ops, agm, Ratio(ops, agm), res)
	}
	// Triangle: AGM = N^{3/2}.
	{
		n := p.M * 4 * p.Scale
		dom := int(2 * math.Sqrt(float64(n)))
		d := newDisk(p)
		rng := rand.New(rand.NewSource(p.Seed + 18))
		g := hypergraph.MustNew([]*hypergraph.Edge{
			{ID: 0, Name: "R12", Attrs: []int{0, 1}},
			{ID: 1, Name: "R13", Attrs: []int{0, 2}},
			{ID: 2, Name: "R23", Attrs: []int{1, 2}},
		})
		in := relation.Instance{
			0: workload.UniformPairs(d, rng, 0, 1, dom, dom, n),
			1: workload.UniformPairs(d, rng, 0, 2, dom, dom, n),
			2: workload.UniformPairs(d, rng, 1, 2, dom, dom, n),
		}
		var res int64
		ops, err := baseline.GenericJoin(g, in, countEmit(&res))
		if err != nil {
			return nil, err
		}
		agm := math.Pow(float64(n), 1.5)
		t.AddRow("triangle", n, ops, agm, Ratio(ops, agm), res)
	}
	// Star worst case: AGM = prod petals.
	{
		n := p.M * 2 * p.Scale
		d := newDisk(p)
		g, in := workload.StarWorstCase(d, []int{n, n})
		var res int64
		ops, err := baseline.GenericJoin(g, in, countEmit(&res))
		if err != nil {
			return nil, err
		}
		agm := float64(n) * float64(n)
		t.AddRow("star2 worst", n, ops, agm, Ratio(ops, agm), res)
	}
	// Internal Yannakakis on the L3 worst case: O(N + |Q(R)|) ops.
	{
		n := p.M * p.Scale
		d := newDisk(p)
		g, in := workload.Line3WorstCase(d, n, n)
		var res int64
		ops, err := baseline.YannakakisInternal(g, in, countEmit(&res))
		if err != nil {
			return nil, err
		}
		linOut := float64(3*n) + float64(n)*float64(n)
		t.AddRow("L3 worst (Yannakakis)", n, ops, linOut, Ratio(ops, float64(linOut)), res)
	}
	t.Notes = append(t.Notes,
		"ops/AGM stays O(1): both internal algorithms are worst-case optimal in memory, motivating the external-memory question",
	)
	return t, nil
}

var _ = tuple.Unset
