// Package harness defines the experiment registry that regenerates every
// table and figure of the paper as a measured experiment on the simulated
// external-memory machine, shared by cmd/joinbench and the root package's
// benchmarks. Each experiment produces an ASCII table comparing measured
// block I/Os against the paper's bound formula; EXPERIMENTS.md records the
// outcomes.
package harness

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"acyclicjoin/internal/cli"
)

// Params configures an experiment run.
type Params struct {
	// M and B are the machine parameters (tuples per memory / per block).
	M, B int
	// Scale multiplies the experiment's base input sizes; 1 is the default
	// test scale, benchmarks use larger values.
	Scale int
	// Seed feeds the randomized workloads.
	Seed int64
	// NoMemo disables the charge-replay operator memo that newDisk
	// attaches by default. Tables are byte-identical either way (replay
	// charges exactly what the real operator would); the switch exists
	// for A/B timing and for proving that claim (E23, E24).
	NoMemo bool
	// NoSortCache is the former name of NoMemo; either flag disables the
	// memo.
	//
	// Deprecated: set NoMemo instead.
	NoSortCache bool
	// NoPrune disables branch-and-bound pruning of exhaustive-strategy dry
	// runs in the experiments that honor it. Experiment tables report
	// execution-cost figures that pruning provably does not change, so every
	// table is byte-identical under either setting; experiments whose PURPOSE
	// is the paper's full Σ-branches planning accounting (E4's
	// "incl. planning" row) or a full-stats memo A/B (E23, E24) pin NoPrune
	// internally and ignore this knob. E25 measures the pruned-vs-unpruned
	// difference explicitly.
	NoPrune bool
	// Backend selects the storage engine every experiment machine is built
	// on: "sim" (or empty) for the counting simulator, "file" for the
	// os.File-backed engine, which physically executes and verifies each
	// charged transfer. Tables are byte-identical across backends — the
	// model sits above the backend seam — so the switch exists for the
	// differential suite (E27) and for running the whole registry as a real
	// systems benchmark. An empty value falls back to the
	// ACYCLICJOIN_BACKEND environment variable.
	Backend string
	// DataDir is where the file backend keeps its backing files; empty means
	// the ACYCLICJOIN_DATADIR environment variable, then the system temp
	// directory with files unlinked at creation.
	DataDir string
	// SyncDevice forces the file backend's synchronous device path (inline
	// pwrite/pread, no background writeback or prefetch workers). False uses
	// the asynchronous pipeline unless ACYCLICJOIN_SYNC_DEVICE overrides.
	// Every table is byte-identical either way — the knob trades only
	// wall-clock overlap. Ignored by the sim backend.
	SyncDevice bool
	// Shards, when >= 2, adds a shard-parallel arm to the verification
	// sweep: every trial is re-run across that many simulated MPC servers —
	// with and without heavy-hitter splitting — and checked against the
	// enumeration oracle. 0 falls back to the ACYCLICJOIN_SHARDS environment
	// variable, then to 1 (no shard arm). Experiments pin their shard counts
	// per measurement and ignore this knob.
	Shards int
	// Strategy, when non-empty, restricts the verification sweep to one
	// peeling strategy ("exhaustive", "first", "smallest", "greedy") instead
	// of sweeping them all — the hook that lets CI re-run the whole
	// randomized suite under the greedy planner with zero code changes. An
	// empty value falls back to the ACYCLICJOIN_STRATEGY environment
	// variable, then to the full sweep. Experiments pin their strategies
	// per measurement and ignore this knob.
	Strategy string
	// DevFaultRate, when > 0 and Backend is "file", wraps every experiment
	// machine's storage engine with the device-level chaos rig
	// (internal/extmem/faultbackend) injecting transient syscall faults at
	// this per-call probability, seeded by DevFaultSeed. The engine absorbs
	// every transient below the backend seam, so tables stay byte-identical
	// — the hook that lets CI re-run the whole registry under device chaos
	// with zero code changes. 0 falls back to the ACYCLICJOIN_DEVFAULTRATE /
	// ACYCLICJOIN_DEVFAULTSEED environment variables. Ignored by the sim
	// backend (no syscalls to fault); experiments that measure specific
	// fault schedules (E30) pin their plans and ignore this knob.
	DevFaultRate float64
	DevFaultSeed int64
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.M == 0 {
		p.M = 256
	}
	if p.B == 0 {
		p.B = 16
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	if p.Backend == "" {
		p.Backend = os.Getenv("ACYCLICJOIN_BACKEND")
	}
	if p.Backend == "" {
		p.Backend = "sim"
	}
	if p.DataDir == "" {
		p.DataDir = os.Getenv("ACYCLICJOIN_DATADIR")
	}
	if p.Strategy == "" {
		p.Strategy = os.Getenv("ACYCLICJOIN_STRATEGY")
	}
	if p.Shards == 0 {
		// Lenient: a malformed ACYCLICJOIN_SHARDS is rejected with an error
		// by the library's RunContext; here it just means no shard arm.
		if n, err := cli.Shards(0); err == nil {
			p.Shards = n
		} else {
			p.Shards = 1
		}
	}
	if p.DevFaultRate == 0 {
		// Lenient like Shards: a malformed env value means no device faults
		// here; RunContext is where it errors.
		if r, err := cli.DevFaultRate(0); err == nil {
			p.DevFaultRate = r
		}
	}
	if p.DevFaultSeed == 0 {
		if s, err := cli.DevFaultSeed(0); err == nil {
			p.DevFaultSeed = s
		} else {
			p.DevFaultSeed = 1
		}
	}
	return p
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render produces an aligned ASCII table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md ("E4").
	ID string
	// Artifact names the paper artifact ("Table 1 row L3; Theorem 1; Fig 3").
	Artifact string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and returns its table.
	Run func(p Params) (*Table, error)
}

var registry = map[string]*Experiment{}

// Register adds an experiment; called from init functions in this package.
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID, or nil.
func Get(id string) *Experiment { return registry[id] }

// All returns the experiments sorted by ID.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware: E1 < E2 < ... < E10.
		return expKey(out[i].ID) < expKey(out[j].ID)
	})
	return out
}

func expKey(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// Outcome pairs an experiment with its result (table or error).
type Outcome struct {
	Exp   *Experiment
	Table *Table
	Err   error
}

// RunAll executes the experiments with at most parallelism in flight at once
// (values <= 1 run sequentially, in order) and returns the outcomes in input
// order. Experiments are independent — each builds its own simulated disk
// and seeds its own generators from Params — so concurrent execution yields
// tables bit-identical to a sequential sweep.
func RunAll(exps []*Experiment, p Params, parallelism int) []Outcome {
	return RunAllCtx(context.Background(), exps, p, parallelism)
}

// RunAllCtx is RunAll with cancellation between experiments: once ctx is
// done, experiments not yet started are skipped with Err set to the
// cancellation cause (an in-flight experiment still runs to completion —
// experiments own their disks, so there is no handle to abort one midway).
func RunAllCtx(ctx context.Context, exps []*Experiment, p Params, parallelism int) []Outcome {
	out := make([]Outcome, len(exps))
	cancelled := func(i int, e *Experiment) bool {
		if ctx.Err() == nil {
			return false
		}
		out[i] = Outcome{Exp: e, Err: fmt.Errorf("harness: skipped: %w", context.Cause(ctx))}
		return true
	}
	if parallelism <= 1 {
		for i, e := range exps {
			if cancelled(i, e) {
				continue
			}
			tab, err := e.Run(p)
			out[i] = Outcome{Exp: e, Table: tab, Err: err}
		}
		return out
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e *Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if cancelled(i, e) {
				return
			}
			tab, err := e.Run(p)
			out[i] = Outcome{Exp: e, Table: tab, Err: err}
		}(i, e)
	}
	wg.Wait()
	return out
}

// Ratio formats measured/bound with guards against zero bounds.
func Ratio(measured int64, bound float64) string {
	if bound <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(measured)/bound)
}
