package harness

import (
	"fmt"

	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/extmem/diskfile"
	"acyclicjoin/internal/extmem/faultbackend"
)

// newBackendDisk builds one experiment machine on the storage engine selected
// by Params.Backend: the counting simulator by default, or the os.File-backed
// engine under "file" — every experiment then physically executes and
// verifies its charged transfers, with tables byte-identical either way (the
// model sits entirely above the backend seam). It panics on a misconfigured
// backend: experiments treat the machine the way they treat an invalid
// Config, as a harness setup error rather than a measurable outcome.
//
// Experiments create disks freely and drop them when done, so the file
// engine's descriptor is reclaimed by its Close finalizer rather than an
// explicit close; the backing file itself is unlinked at creation unless
// Params.DataDir pins it to a directory.
func newBackendDisk(p Params, cfg extmem.Config) *extmem.Disk {
	switch p.Backend {
	case "", "sim":
		return extmem.NewDisk(cfg)
	case "file":
		if p.DevFaultRate > 0 {
			plan := extmem.DeviceFaultPlan{Seed: p.DevFaultSeed, Rate: p.DevFaultRate}
			b, err := faultbackend.Open(p.DataDir, cfg, p.SyncDevice || diskfile.SyncFromEnv(), plan)
			if err != nil {
				panic(fmt.Sprintf("harness: open file backend: %v", err))
			}
			return extmem.NewDiskWithBackend(cfg, b)
		}
		open := diskfile.Open // async unless ACYCLICJOIN_SYNC_DEVICE is set
		if p.SyncDevice {
			open = diskfile.OpenSync
		}
		eng, err := open(p.DataDir, cfg)
		if err != nil {
			panic(fmt.Sprintf("harness: open file backend: %v", err))
		}
		return extmem.NewDiskWithBackend(cfg, eng)
	default:
		panic(fmt.Sprintf("harness: unknown backend %q (want \"sim\" or \"file\")", p.Backend))
	}
}
