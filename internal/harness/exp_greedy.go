package harness

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/tuple"
)

func init() {
	Register(&Experiment{
		ID:       "E28",
		Artifact: "greedy one-branch planner graded by the exhaustive oracle (implementation artifact)",
		Title:    "Greedy vs exhaustive: planning I/Os, plan-quality ratio, identical rows",
		Run:      runE28,
	})
}

// greedyArm is one strategy's measurement on a memo workload: the core
// Result, the emitted row count, an order-insensitive fingerprint of the
// emitted rows, and host wall-clock time. Rows are fingerprinted rather than
// collected so the comparison stays O(1) memory at benchmark scale; the
// fingerprint is a wrap-around sum of per-row FNV-1a hashes, which is
// insensitive to emission order (the two strategies may interleave chunks
// differently).
type greedyArm struct {
	res  *core.Result
	rows int64
	fp   uint64
	wall time.Duration
}

// runGreedyArm runs one sequential evaluation of memo workload w under the
// given strategy. Sequential on purpose: both arms are then deterministic,
// so the E28 table reproduces byte for byte at any harness parallelism.
func runGreedyArm(p Params, w int, strategy core.Strategy) (greedyArm, error) {
	d := newDisk(p)
	rng := rand.New(rand.NewSource(p.Seed + int64(w)))
	restore := d.Suspend()
	g, in := memoWorkloads[w].build(p, d, rng)
	restore()
	d.ResetStats()
	var arm greedyArm
	start := time.Now()
	r, err := core.Run(g, in, func(a tuple.Assignment) {
		h := fnv.New64a()
		h.Write([]byte(a.String()))
		arm.fp += h.Sum64()
		arm.rows++
	}, core.Options{Strategy: strategy})
	arm.wall = time.Since(start)
	arm.res = r
	return arm, err
}

// planningIOs is the strategy-agnostic planning overhead of a run: total
// charged I/Os minus the winning (or only) branch's execution I/Os. For the
// exhaustive strategy that is the dry-run sweep; for greedy it is the bounded
// probes — both charged through the same disk, so the comparison is honest.
func planningIOs(r *core.Result) int64 {
	return r.TotalStats.IOs() - r.ExecStats.IOs()
}

func runE28(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title: "E28: greedy planner vs exhaustive oracle (sequential, per memo workload)",
		Header: []string{"workload", "branches", "plan IOs greedy", "plan IOs exh", "plan %",
			"exec IOs greedy", "exec IOs best", "quality", "rows equal"},
	}
	for w := range memoWorkloads {
		gr, err := runGreedyArm(p, w, core.StrategyGreedy)
		if err != nil {
			return nil, fmt.Errorf("E28 %s greedy: %w", memoWorkloads[w].name, err)
		}
		ex, err := runGreedyArm(p, w, core.StrategyExhaustive)
		if err != nil {
			return nil, fmt.Errorf("E28 %s exhaustive: %w", memoWorkloads[w].name, err)
		}
		// The greedy plan must change only cost, never the answer.
		if gr.rows != ex.rows || gr.fp != ex.fp {
			return nil, fmt.Errorf("E28 %s: greedy emitted %d rows (fp %x), exhaustive %d (fp %x)",
				memoWorkloads[w].name, gr.rows, gr.fp, ex.rows, ex.fp)
		}
		planG, planE := planningIOs(gr.res), planningIOs(ex.res)
		planPct := "-"
		if planE > 0 {
			planPct = fmt.Sprintf("%.1f", 100*float64(planG)/float64(planE))
		}
		quality := "-"
		if ex.res.ExecStats.IOs() > 0 {
			quality = fmt.Sprintf("%.2f", float64(gr.res.ExecStats.IOs())/float64(ex.res.ExecStats.IOs()))
		}
		t.AddRow(memoWorkloads[w].name, ex.res.Branches, planG, planE, planPct,
			gr.res.ExecStats.IOs(), ex.res.ExecStats.IOs(), quality, "yes")
	}
	t.Notes = append(t.Notes,
		"plan IOs = total charged I/Os minus the executed branch's I/Os: bounded probes for greedy, the pruned dry-run sweep for exhaustive",
		"quality = greedy-plan execution I/Os / exhaustive winner's execution I/Os (1.00 means greedy picked the optimal branch)",
		"rows equal = emitted multisets match via order-insensitive per-row FNV fingerprint; a mismatch aborts with an error")
	return t, nil
}

// GreedyBenchResult is the machine-readable greedy benchmark record written
// by joinbench -greedyjson (committed as BENCH_greedy.json).
type GreedyBenchResult struct {
	M, B, Scale int
	Seed        int64
	Workloads   []GreedyBenchRow
}

// GreedyBenchRow reports one workload's greedy-vs-exhaustive measurement.
type GreedyBenchRow struct {
	Name                  string
	WallNanosGreedy       int64
	WallNanosExhaustive   int64
	Speedup               float64 // exhaustive/greedy wall-clock ratio
	Branches              int     // branches the exhaustive oracle explored
	PlanningIOsGreedy     int64   // probe charges
	PlanningIOsExhaustive int64   // dry-run sweep charges (pruned)
	PlanningFraction      float64 // greedy / exhaustive planning I/Os
	ExecIOsGreedy         int64
	ExecIOsBest           int64   // the exhaustive winner's execution I/Os
	QualityRatio          float64 // greedy exec / best exec (1.0 = optimal plan)
	RowsEqual             bool    // emitted multisets match (fingerprint + count)
}

// GreedyBench runs the E28 workloads with host timing and returns the
// machine-readable record. Wall-clock numbers are best-of-3 per arm; all
// simulated figures are deterministic (sequential arms).
func GreedyBench(p Params) (*GreedyBenchResult, error) {
	p = p.WithDefaults()
	res := &GreedyBenchResult{M: p.M, B: p.B, Scale: p.Scale, Seed: p.Seed}
	for w := range memoWorkloads {
		row := GreedyBenchRow{Name: memoWorkloads[w].name}
		var gr, ex greedyArm
		for rep := 0; rep < 3; rep++ {
			a, err := runGreedyArm(p, w, core.StrategyGreedy)
			if err != nil {
				return nil, err
			}
			if rep == 0 || a.wall.Nanoseconds() < row.WallNanosGreedy {
				row.WallNanosGreedy = a.wall.Nanoseconds()
			}
			gr = a

			a, err = runGreedyArm(p, w, core.StrategyExhaustive)
			if err != nil {
				return nil, err
			}
			if rep == 0 || a.wall.Nanoseconds() < row.WallNanosExhaustive {
				row.WallNanosExhaustive = a.wall.Nanoseconds()
			}
			ex = a
		}
		row.Branches = ex.res.Branches
		row.PlanningIOsGreedy = planningIOs(gr.res)
		row.PlanningIOsExhaustive = planningIOs(ex.res)
		if row.PlanningIOsExhaustive > 0 {
			row.PlanningFraction = float64(row.PlanningIOsGreedy) / float64(row.PlanningIOsExhaustive)
		}
		row.ExecIOsGreedy = gr.res.ExecStats.IOs()
		row.ExecIOsBest = ex.res.ExecStats.IOs()
		if row.ExecIOsBest > 0 {
			row.QualityRatio = float64(row.ExecIOsGreedy) / float64(row.ExecIOsBest)
		}
		row.RowsEqual = gr.rows == ex.rows && gr.fp == ex.fp
		if row.WallNanosGreedy > 0 {
			row.Speedup = float64(row.WallNanosExhaustive) / float64(row.WallNanosGreedy)
		}
		res.Workloads = append(res.Workloads, row)
	}
	return res, nil
}
