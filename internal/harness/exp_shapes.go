package harness

import (
	"fmt"
	"math"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/cover"
	"acyclicjoin/internal/gens"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:       "E10",
		Artifact: "Section 5, Theorem 4, Figure 5",
		Title:    "Star joins: worst case matches prod(petals)/(M^{k-1} B)",
		Run:      runE10,
	})
	Register(&Experiment{
		ID:       "E11",
		Artifact: "Section 7.1, Theorem 7, Algorithm 6",
		Title:    "Equal-size acyclic joins: (N/M)^c * M/B with c = min edge cover",
		Run:      runE11,
	})
	Register(&Experiment{
		ID:       "E12",
		Artifact: "Section 7.2, Figure 8",
		Title:    "Lollipop joins: peel-order switch at N0 vs Nn",
		Run:      runE12,
	})
	Register(&Experiment{
		ID:       "E13",
		Artifact: "Section 7.3, Figure 9, condition (7)",
		Title:    "Dumbbell joins: cost across the balance condition",
		Run:      runE13,
	})
}

func runE10(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E10: star join worst case (Theorem 4 construction)",
		Header: []string{"petals", "petal N", "IOs (best branch)", "bound prod/(M^{k-1}B)", "ratio", "results"},
	}
	// Output size is n^k (every petal combination), so n shrinks with k and
	// is Scale-driven rather than M-driven; the bound scales the same way.
	for _, k := range []int{2, 3} {
		for _, mult := range []int{2, 4} {
			n := 64 * mult * p.Scale / (k - 1)
			petals := make([]int, k)
			bound := 1.0
			for i := range petals {
				petals[i] = n
				bound *= float64(n)
			}
			bound /= math.Pow(float64(p.M), float64(k-1)) * float64(p.B)
			bound += float64(k*n) / float64(p.B) // suppressed linear term
			d := newDisk(p)
			g, in := workload.StarWorstCase(d, petals)
			var res int64
			r, err := core.Run(g, in, countEmit(&res), core.Options{Strategy: core.StrategyFirst, AssumeReduced: true})
			if err != nil {
				return nil, err
			}
			wantRes := int64(1)
			for _, pn := range petals {
				wantRes *= int64(pn)
			}
			if res != wantRes {
				return nil, fmt.Errorf("E10: emitted %d, want %d", res, wantRes)
			}
			t.AddRow(k, n, r.ExecStats.IOs(), bound, Ratio(r.ExecStats.IOs(), bound), res)
		}
	}
	t.Notes = append(t.Notes,
		"the partial join on the petals has size prod N_i, so every algorithm needs >= prod/(M^{k-1}B) I/Os; ratios stay O(1)")
	return t, nil
}

func runE11(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E11: equal-size acyclic joins (Theorem 7 construction)",
		Header: []string{"query", "c (min cover)", "N", "IOs (best branch)", "bound (N/M)^c*M/B", "ratio"},
	}
	// The construction's output is N^c, so N shrinks with the cover number
	// to keep emission volume bounded. Per the Theorem 7 proof, equal sizes
	// need no nondeterminism, so a single deterministic branch suffices.
	// Output is N^c, so base sizes shrink with the cover number and are
	// Scale-driven rather than M-driven.
	queries := []struct {
		name string
		g    *hypergraph.Graph
		base int
	}{
		{"L3", hypergraph.Line(3), 256},
		{"L5", hypergraph.Line(5), 96},
		{"star3", hypergraph.StarQuery(3), 96},
	}
	for _, qc := range queries {
		c := len(cover.GreedyMinCover(qc.g))
		n := qc.base * p.Scale
		d := newDisk(p)
		in, packing, err := workload.EqualSizePacking(d, qc.g, n)
		if err != nil {
			return nil, err
		}
		if len(packing) != c {
			return nil, fmt.Errorf("E11: packing %d != cover %d on %s", len(packing), c, qc.name)
		}
		bound := math.Pow(float64(n)/float64(p.M), float64(c))*float64(p.M)/float64(p.B) +
			float64(in.TotalSize(qc.g))/float64(p.B)
		var res int64
		r, err := core.Run(qc.g, in, countEmit(&res), core.Options{Strategy: core.StrategyFirst, AssumeReduced: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(qc.name, c, n, r.ExecStats.IOs(), bound, Ratio(r.ExecStats.IOs(), bound))
	}
	t.Notes = append(t.Notes,
		"c equals the max attribute packing (LP duality); the construction's join size is N^c",
		"Theorem 7's proof shows nondeterminism is unnecessary at equal sizes, so one deterministic branch is measured")
	return t, nil
}

func runE12(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E12: lollipop join, both size regimes (N0 vs Nn)",
		Header: []string{"regime", "IOs (best branch)", "bound 2^x (Thm 3)", "measured/bound", "results"},
	}
	n := 3
	g := hypergraph.Lollipop(n)
	// Domains: core attrs v0..v2, bridge attr v3, uniques after.
	for _, regime := range []string{"N0<=Nn", "N0>=Nn"} {
		dom := map[hypergraph.Attr]int{}
		for _, a := range g.Attrs() {
			dom[a] = 1
		}
		big := 64 * p.Scale // output is ~big^3 (three unique petal domains)
		if regime == "N0<=Nn" {
			// Small core: all join domains 1; fat petal uniques.
			for _, e := range g.Edges() {
				for _, a := range g.UniqueAttrs(e) {
					dom[a] = big
				}
			}
		} else {
			// Fat core: core attr v1, v2 sized so N0 = big; petals small.
			dom[1] = big / 2
			dom[2] = 2
			for _, e := range g.Edges() {
				for _, a := range g.UniqueAttrs(e) {
					dom[a] = 4
				}
			}
		}
		d := newDisk(p)
		_, in, err := workload.LollipopCross(d, n, dom)
		if err != nil {
			return nil, err
		}
		szMap := cover.Sizes{}
		for _, e := range g.Edges() {
			szMap[e.ID] = float64(in[e.ID].Len())
		}
		boundLog, _, _, err := gens.BestBound(g, szMap, p.M, p.B)
		if err != nil {
			return nil, err
		}
		lin := 0.0
		for _, s := range szMap {
			lin += s
		}
		bound := math.Pow(2, boundLog) + lin/float64(p.B)
		var res int64
		r, err := core.Run(g, in, countEmit(&res), core.Options{Strategy: core.StrategyExhaustive, AssumeReduced: true, NoPrune: p.NoPrune})
		if err != nil {
			return nil, err
		}
		t.AddRow(regime, r.ExecStats.IOs(), bound, Ratio(r.ExecStats.IOs(), bound), res)
	}
	t.Notes = append(t.Notes,
		"Section 7.2 peels the star with the larger core last; the exhaustive strategy finds that branch automatically")
	return t, nil
}

func runE13(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title:  "E13: dumbbell join across balance condition (7)",
		Header: []string{"balanced(7)", "IOs (best branch)", "bound 2^x (Thm 3)", "measured/bound", "results"},
	}
	g := hypergraph.Dumbbell(2, 4)
	for _, balanced := range []bool{true, false} {
		dom := map[hypergraph.Attr]int{}
		for _, a := range g.Attrs() {
			dom[a] = 1
		}
		big := 64 * p.Scale
		if balanced {
			// Fat petals, thin cores: N_i*N_j >= N0*Nm holds.
			for _, e := range g.Edges() {
				for _, a := range g.UniqueAttrs(e) {
					dom[a] = big
				}
			}
		} else {
			// Fat cores, thin petals: condition (7) broken. Cores 0 and m:
			// give their join attrs larger domains.
			core0 := g.Edge(0)
			dom[core0.Attrs[0]] = big / 2
			dom[core0.Attrs[1]] = 2
			corem := g.Edge(4)
			dom[corem.Attrs[0]] = big / 2
			dom[corem.Attrs[len(corem.Attrs)-1]] = 2
			for _, e := range g.Edges() {
				for _, a := range g.UniqueAttrs(e) {
					dom[a] = 2
				}
			}
		}
		d := newDisk(p)
		_, in, err := workload.DumbbellCross(d, 2, 4, dom)
		if err != nil {
			return nil, err
		}
		szMap := cover.Sizes{}
		for _, e := range g.Edges() {
			szMap[e.ID] = float64(in[e.ID].Len())
		}
		boundLog, _, _, err := gens.BestBound(g, szMap, p.M, p.B)
		if err != nil {
			return nil, err
		}
		lin := 0.0
		for _, s := range szMap {
			lin += s
		}
		bound := math.Pow(2, boundLog) + lin/float64(p.B)
		var res int64
		r, err := core.Run(g, in, countEmit(&res), core.Options{Strategy: core.StrategyExhaustive, AssumeReduced: true, NoPrune: p.NoPrune})
		if err != nil {
			return nil, err
		}
		t.AddRow(balanced, r.ExecStats.IOs(), bound, Ratio(r.ExecStats.IOs(), bound), res)
	}
	t.Notes = append(t.Notes,
		"under condition (7) Algorithm 2 is optimal (Section 7.3); when broken, the bound may be loose, mirroring the L5 situation")
	return t, nil
}
