package harness

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/shard"
	"acyclicjoin/internal/tuple"
	"acyclicjoin/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:       "E29",
		Artifact: "MPC per-round load vs the instance-optimal bound (arXiv:1903.09717 §4; skew per arXiv:1310.3314)",
		Title:    "Shard-parallel execution: max load vs ceil(N/p), heavy-hitter splitting on/off",
		Run:      runE29,
	})
}

// shardWorkload is one E29/ShardBench input family. Every generator is
// deterministic in (Params, seed), so the table reproduces byte for byte.
type shardWorkload struct {
	name string
	// build creates the query and instance on d; rows scale with p.
	build func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance)
}

// shardWorkloads: a uniform L2 join (hashing alone balances it) and a
// Zipf-skewed L2 join whose dominant join value pins the load to one server
// unless the heavy-hitter machinery splits it.
var shardWorkloads = []shardWorkload{
	{"L2 uniform", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		n := p.M * 4 * p.Scale
		g := hypergraph.Line(2)
		return g, relation.Instance{
			0: workload.UniformPairs(d, rng, 0, 1, n, n, n),
			1: workload.UniformPairs(d, rng, 1, 2, n, n, n),
		}
	}},
	{"L2 zipf s=2", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		n := p.M * 2 * p.Scale
		dom := n / 8
		g := hypergraph.Line(2)
		return g, relation.Instance{
			// R's join values are uniform (light co-partner side); S's are
			// Zipf with exponent 2, so the top value alone carries over half
			// of S.
			0: workload.UniformPairs(d, rng, 0, 1, n, dom, n),
			1: workload.ZipfPairs(d, rng, 1, 2, dom, n, n, 2.0),
		}
	}},
}

// shardArm runs workload w across shards servers (1 server still pays
// distribution) and fingerprints the emitted rows order-insensitively.
type shardArm struct {
	res  *shard.Result
	rows int64
	fp   uint64
	wall time.Duration
}

func runShardArm(p Params, wl shardWorkload, seed int64, shards int, noSplit bool) (shardArm, error) {
	d := newDisk(p)
	rng := rand.New(rand.NewSource(p.Seed + seed))
	restore := d.Suspend()
	g, in := wl.build(p, d, rng)
	restore()
	d.ResetStats()
	var arm shardArm
	start := time.Now()
	r, err := shard.Run(g, in, func(a tuple.Assignment) {
		h := fnv.New64a()
		h.Write([]byte(a.String()))
		arm.fp += h.Sum64()
		arm.rows++
	}, shard.Options{Shards: shards, Core: core.Options{Strategy: core.StrategySmallest}, NoHeavySplit: noSplit})
	arm.wall = time.Since(start)
	arm.res = r
	return arm, err
}

// runShardBase is the honest single-server baseline: the same workload
// evaluated by core.Run directly, no distribution round.
func runShardBase(p Params, wl shardWorkload, seed int64) (shardArm, error) {
	d := newDisk(p)
	rng := rand.New(rand.NewSource(p.Seed + seed))
	restore := d.Suspend()
	g, in := wl.build(p, d, rng)
	restore()
	d.ResetStats()
	var arm shardArm
	start := time.Now()
	_, err := core.Run(g, in, func(a tuple.Assignment) {
		h := fnv.New64a()
		h.Write([]byte(a.String()))
		arm.fp += h.Sum64()
		arm.rows++
	}, core.Options{Strategy: core.StrategySmallest})
	arm.wall = time.Since(start)
	return arm, err
}

var e29ShardCounts = []int{1, 2, 4, 8}

func runE29(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title: "E29: shard-parallel MPC load vs instance-optimal bound ceil(N/p)",
		Header: []string{"workload", "p", "split", "rows", "N", "max load", "bound", "ratio",
			"repl", "heavy", "compute max/bound", "identical"},
	}
	for w, wl := range shardWorkloads {
		base, err := runShardBase(p, wl, int64(w))
		if err != nil {
			return nil, fmt.Errorf("E29 %s unsharded: %w", wl.name, err)
		}
		for _, shards := range e29ShardCounts {
			splits := []bool{false}
			if shards > 1 {
				splits = []bool{false, true} // with and without heavy-hitter splitting
			}
			for _, noSplit := range splits {
				arm, err := runShardArm(p, wl, int64(w), shards, noSplit)
				if err != nil {
					return nil, fmt.Errorf("E29 %s x%d: %w", wl.name, shards, err)
				}
				if arm.rows != base.rows || arm.fp != base.fp {
					return nil, fmt.Errorf("E29 %s x%d (nosplit=%v): emitted %d rows (fp %x), unsharded %d (fp %x)",
						wl.name, shards, noSplit, arm.rows, arm.fp, base.rows, base.fp)
				}
				dist := arm.res.Load.Rounds[0]
				compute := arm.res.Load.Rounds[1]
				split := "on"
				if noSplit {
					split = "off"
				}
				t.AddRow(wl.name, shards, split, arm.rows,
					arm.res.Load.InputTuples, dist.Max(), dist.Bound,
					fmt.Sprintf("%.2f", dist.Ratio()), fmt.Sprintf("%.2f", arm.res.Load.Replication),
					arm.res.Load.HeavyValues, fmt.Sprintf("%.2f", compute.Ratio()), "yes")
			}
		}
	}
	t.Notes = append(t.Notes,
		"max load = most tuples any server receives in the distribute round; bound = ceil(N/p), the instance-optimal load",
		"split off: every tuple goes to its hash owner, so a heavy join value pins its whole frequency to one server (ratio grows with p)",
		"split on: a value above N_hashed/p is dealt round-robin with its (light) co-partner side replicated, holding the ratio near 1 + broadcast overhead",
		"compute max/bound = slowest server's charged block I/Os over the perfect p-way split of the actually performed work",
		"identical = emitted multiset matches the unsharded run via order-insensitive per-row FNV fingerprint; a mismatch aborts with an error")
	return t, nil
}

// ShardBenchResult is the machine-readable sharding benchmark written by
// joinbench -shardjson (committed as BENCH_shards.json).
type ShardBenchResult struct {
	M, B, Scale int
	Seed        int64
	Backend     string
	Workloads   []ShardBenchRow
}

// ShardBenchRow reports one (workload, shard count) measurement.
type ShardBenchRow struct {
	Name          string
	Shards        int
	Rows          int64   // join results emitted
	InputTuples   int64   // N
	MaxLoad       int64   // distribute-round maximum per-server load
	Bound         int64   // instance-optimal ceil(N/p)
	LoadRatio     float64 // MaxLoad / Bound
	Replication   float64 // tuples received across servers / N
	HeavyValues   int     // join values split by the heavy-hitter machinery
	ComputeIOs    int64   // total charged block I/Os across servers (incl. distribution)
	WallNanos     int64   // best-of-3 sharded wall clock
	WallNanosBase int64   // best-of-3 unsharded (core.Run) wall clock
	Speedup       float64 // base / sharded
	Identical     bool    // fingerprint + count match the unsharded run
}

// shardBenchWorkloads are benchmark-scale inputs (relations well past M) where
// per-server fragments drop whole external-sort merge passes, so sharding
// wins wall-clock on one core; ShardBench runs them on Params.Backend — the
// committed BENCH_shards.json uses the file backend, where every charged
// transfer is physically performed.
var shardBenchWorkloads = []shardWorkload{
	{"L2 uniform n=16*M*scale", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		n := p.M * 16 * p.Scale
		g := hypergraph.Line(2)
		return g, relation.Instance{
			0: workload.UniformPairs(d, rng, 0, 1, n, n, n),
			1: workload.UniformPairs(d, rng, 1, 2, n, n, n),
		}
	}},
	{"flower6 uniform n=16*M*scale", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		// Six relations R_i(0, i+1) all sharing join attribute 0, so every
		// relation hash-shards (replication 1.0) and each server's six
		// fragments sort with fewer external merge passes than the whole.
		n := p.M * 16 * p.Scale
		var edges []*hypergraph.Edge
		in := relation.Instance{}
		for i := 0; i < 6; i++ {
			edges = append(edges, &hypergraph.Edge{ID: i, Name: fmt.Sprintf("R%d", i+1),
				Attrs: []hypergraph.Attr{0, hypergraph.Attr(i + 1)}})
		}
		g := hypergraph.MustNew(edges)
		for i := 0; i < 6; i++ {
			in[i] = workload.UniformPairs(d, rng, 0, hypergraph.Attr(i+1), n, n, n)
		}
		return g, in
	}},
}

var shardBenchCounts = []int{1, 2, 4, 8}

// ShardBench measures the sharding experiment with host timing: per workload,
// an unsharded baseline plus every shard count, best-of-3 wall clock, with
// the load accounting and the order-insensitive result fingerprint. All
// simulated figures are deterministic; only the wall-clock columns vary.
func ShardBench(p Params) (*ShardBenchResult, error) {
	p = p.WithDefaults()
	res := &ShardBenchResult{M: p.M, B: p.B, Scale: p.Scale, Seed: p.Seed, Backend: p.Backend}
	for w, wl := range shardBenchWorkloads {
		var baseWall int64
		var base shardArm
		for rep := 0; rep < 3; rep++ {
			a, err := runShardBase(p, wl, 100+int64(w))
			if err != nil {
				return nil, err
			}
			if rep == 0 || a.wall.Nanoseconds() < baseWall {
				baseWall = a.wall.Nanoseconds()
			}
			base = a
		}
		for _, shards := range shardBenchCounts {
			row := ShardBenchRow{Name: wl.name, Shards: shards, WallNanosBase: baseWall}
			var arm shardArm
			for rep := 0; rep < 3; rep++ {
				a, err := runShardArm(p, wl, 100+int64(w), shards, false)
				if err != nil {
					return nil, err
				}
				if rep == 0 || a.wall.Nanoseconds() < row.WallNanos {
					row.WallNanos = a.wall.Nanoseconds()
				}
				arm = a
			}
			dist := arm.res.Load.Rounds[0]
			row.Rows = arm.rows
			row.InputTuples = arm.res.Load.InputTuples
			row.MaxLoad = dist.Max()
			row.Bound = dist.Bound
			row.LoadRatio = dist.Ratio()
			row.Replication = arm.res.Load.Replication
			row.HeavyValues = arm.res.Load.HeavyValues
			row.ComputeIOs = arm.res.TotalStats.IOs()
			row.Identical = arm.rows == base.rows && arm.fp == base.fp
			if !row.Identical {
				return nil, fmt.Errorf("shard bench %s x%d: emitted %d rows (fp %x), unsharded %d (fp %x)",
					row.Name, shards, arm.rows, arm.fp, base.rows, base.fp)
			}
			if row.WallNanos > 0 {
				row.Speedup = float64(row.WallNanosBase) / float64(row.WallNanos)
			}
			res.Workloads = append(res.Workloads, row)
		}
	}
	return res, nil
}
