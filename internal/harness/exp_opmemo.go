package harness

import (
	"fmt"
	"math/rand"
	"time"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/opcache"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/workload"
)

func init() {
	Register(&Experiment{
		ID:       "E24",
		Artifact: "operator memo with branch-prefix reuse (implementation artifact)",
		Title:    "Memo A/B across operator-diverse workloads: off vs on vs bounded vs parallel, all bit-identical",
		Run:      runE24,
	})
}

// memoWorkloads widen the E23 sweep to exercise every memoized operator
// kind: L3 worst case leans on sorts and the materialized pairwise join,
// L4/L5 uniform on the reducer's semijoin passes (L5 adds a deep branch
// space for prefix reuse), and the star worst case on projection and the
// heavy/light split. Each build uses only the passed disk and rng, so every
// arm sees an identical instance.
var memoWorkloads = []struct {
	name  string
	build func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance)
}{
	{"L3 worst case", func(p Params, d *extmem.Disk, _ *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		n := p.M * 2 * p.Scale
		return workload.Line3WorstCase(d, n, n)
	}},
	{"L4 uniform", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		return workload.LineUniform(d, rng, 4, p.M*2*p.Scale, p.M*p.Scale)
	}},
	{"L5 uniform", func(p Params, d *extmem.Disk, rng *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		return workload.LineUniform(d, rng, 5, p.M*2*p.Scale, p.M*p.Scale)
	}},
	{"star-2 worst case", func(p Params, d *extmem.Disk, _ *rand.Rand) (*hypergraph.Graph, relation.Instance) {
		n := p.B * 4 * p.Scale
		return workload.StarWorstCase(d, []int{n, n})
	}},
}

// memoArm selects one configuration of a memo A/B run.
type memoArm struct {
	mode        core.MemoMode
	limits      opcache.Limits
	parallelism int
}

// runMemoArm runs one exhaustive-strategy evaluation of memo workload w
// under the given arm, returning the run's I/O stats, result count, memo
// counters, and host wall-clock time.
func runMemoArm(p Params, w int, arm memoArm) (extmem.Stats, int64, opcache.Stats, time.Duration, error) {
	ap := p
	ap.NoMemo = arm.mode == core.MemoOff
	d := newBackendDisk(ap, extmem.Config{M: ap.M, B: ap.B})
	if !ap.NoMemo {
		opcache.EnableLimited(d, arm.limits)
	}
	rng := rand.New(rand.NewSource(p.Seed + int64(w)))
	restore := d.Suspend()
	g, in := memoWorkloads[w].build(p, d, rng)
	restore()
	d.ResetStats()
	var n int64
	start := time.Now()
	_, err := core.Run(g, in, countEmit(&n), core.Options{
		Strategy:    core.StrategyExhaustive,
		Parallelism: arm.parallelism,
		Memo:        arm.mode,
		MemoLimits:  arm.limits,
		// Full-stats bit-identity across memo modes is an unpruned contract:
		// see runSortCacheArm. Pinned here so E24's cross-arm comparison (and
		// its parallel arm) stays exact.
		NoPrune: true,
	})
	elapsed := time.Since(start)
	var cs opcache.Stats
	if m := opcache.Of(d); m != nil {
		cs = m.Stats()
	}
	return d.Stats(), n, cs, elapsed, err
}

// e24BoundedLimits is the deliberately tight budget of E24's bounded arm:
// small enough to force evictions on every workload, proving eviction only
// costs recomputation and never changes a counter.
var e24BoundedLimits = opcache.Limits{MaxEntries: 4}

func runE24(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title: "E24: operator memo A/B (exhaustive strategy): off vs on vs bounded(4 entries) vs parallel(4)",
		Header: []string{"workload", "IOs", "identical", "hits", "misses",
			"KB replayed", "evictions (bounded)"},
	}
	arms := []struct {
		name string
		arm  memoArm
	}{
		{"on", memoArm{mode: core.MemoOn}},
		{"bounded", memoArm{mode: core.MemoOn, limits: e24BoundedLimits}},
		{"parallel", memoArm{mode: core.MemoOn, parallelism: 4}},
	}
	for w := range memoWorkloads {
		ref, nRef, _, _, err := runMemoArm(p, w, memoArm{mode: core.MemoOff})
		if err != nil {
			return nil, err
		}
		var onStats, boundedStats opcache.Stats
		for _, a := range arms {
			st, n, cs, _, err := runMemoArm(p, w, a.arm)
			if err != nil {
				return nil, fmt.Errorf("E24 %s arm %s: %w", memoWorkloads[w].name, a.name, err)
			}
			if st != ref || n != nRef {
				return nil, fmt.Errorf("E24 %s: arm %s changed the simulation: %+v (%d rows) vs memo-off %+v (%d rows)",
					memoWorkloads[w].name, a.name, st, n, ref, nRef)
			}
			switch a.name {
			case "on":
				onStats = cs
			case "bounded":
				boundedStats = cs
			}
		}
		t.AddRow(memoWorkloads[w].name, ref.IOs(), "yes",
			onStats.Hits, onStats.Misses, onStats.BytesReplayed/1024, boundedStats.Evictions)
	}
	t.Notes = append(t.Notes,
		"identical = reads, writes, hi-water, and result counts match the memo-off reference bit for bit in every arm",
		"bounded arm caps the memo at 4 entries (LRU): evictions cost recomputation only, never a counter",
		"parallel arm explores 4 dry-run branches concurrently on child disks sharing one memo")
	return t, nil
}

// OpMemoBenchResult is the machine-readable operator-memo benchmark record
// written by joinbench -benchjson (committed as BENCH_opcache.json).
type OpMemoBenchResult struct {
	M, B, Scale int
	Seed        int64
	Workloads   []OpMemoBenchRow
}

// OpMemoBenchRow reports one workload's A/B measurement.
type OpMemoBenchRow struct {
	Name             string
	WallNanosMemoOn  int64
	WallNanosMemoOff int64
	Speedup          float64 // off/on wall-clock ratio
	IOs              int64   // identical in every arm by construction
	IOsPerResult     float64
	Results          int64
	Identical        bool // simulated stats and result counts match exactly
	Hits, Misses     int64
	HitRate          float64
	BytesReplayed    int64
	BoundedEvictions int64 // evictions under the E24 bounded budget
	BoundedIdentical bool
}

// OpMemoBench runs the E24 workloads with host timing and returns the
// machine-readable record. Wall-clock numbers are best-of-3 per arm to damp
// scheduler noise; all simulated figures are deterministic.
func OpMemoBench(p Params) (*OpMemoBenchResult, error) {
	p = p.WithDefaults()
	res := &OpMemoBenchResult{M: p.M, B: p.B, Scale: p.Scale, Seed: p.Seed}
	for w := range memoWorkloads {
		row := OpMemoBenchRow{Name: memoWorkloads[w].name}
		var on, off extmem.Stats
		var nOn, nOff int64
		for rep := 0; rep < 3; rep++ {
			st, n, cs, el, err := runMemoArm(p, w, memoArm{mode: core.MemoOn})
			if err != nil {
				return nil, err
			}
			if rep == 0 || el.Nanoseconds() < row.WallNanosMemoOn {
				row.WallNanosMemoOn = el.Nanoseconds()
			}
			on, nOn = st, n
			row.Hits, row.Misses, row.BytesReplayed = cs.Hits, cs.Misses, cs.BytesReplayed

			st, n, _, el, err = runMemoArm(p, w, memoArm{mode: core.MemoOff})
			if err != nil {
				return nil, err
			}
			if rep == 0 || el.Nanoseconds() < row.WallNanosMemoOff {
				row.WallNanosMemoOff = el.Nanoseconds()
			}
			off, nOff = st, n
		}
		bst, bn, bcs, _, err := runMemoArm(p, w, memoArm{mode: core.MemoOn, limits: e24BoundedLimits})
		if err != nil {
			return nil, err
		}
		row.IOs = on.IOs()
		row.Results = nOn
		if nOn > 0 {
			row.IOsPerResult = float64(on.IOs()) / float64(nOn)
		}
		row.Identical = on == off && nOn == nOff
		row.BoundedEvictions = bcs.Evictions
		row.BoundedIdentical = bst == off && bn == nOff
		if row.WallNanosMemoOn > 0 {
			row.Speedup = float64(row.WallNanosMemoOff) / float64(row.WallNanosMemoOn)
		}
		if lk := row.Hits + row.Misses; lk > 0 {
			row.HitRate = float64(row.Hits) / float64(lk)
		}
		res.Workloads = append(res.Workloads, row)
	}
	return res, nil
}
