package harness

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/tuple"
)

func init() {
	Register(&Experiment{
		ID:       "E26",
		Artifact: "failure model: chaos sweep of the fault-injecting disk (implementation artifact)",
		Title:    "Chaos: transient faults retried bit-identically; permanent faults and cancellation typed",
		Run:      runE26,
	})
}

// chaosRates and chaosWorkers are the sweep grid: every combination of a
// transient fault rate and a worker count must reproduce the fault-free run
// bit for bit.
var (
	chaosRates   = []float64{0.02, 0.05, 0.2}
	chaosWorkers = []int{0, 2, 4}
)

// chaosArm is one evaluation of memo workload w under plan (nil = fault
// free) at the given parallelism. It returns the core Result, the run's
// emitted-row fingerprint (an order-sensitive FNV hash of every emitted
// assignment), the row count, the disk's fault telemetry, and the error.
// The plan is armed after the instance is loaded, so loading never faults;
// the leak registry is asserted empty on every path.
func chaosArm(p Params, w int, plan *extmem.FaultPlan, par int) (*core.Result, uint64, int64, extmem.FaultStats, error) {
	d := newDisk(p)
	rng := rand.New(rand.NewSource(p.Seed + int64(w)))
	restore := d.Suspend()
	g, in := memoWorkloads[w].build(p, d, rng)
	restore()
	d.ResetStats()
	d.SetFaultPlan(plan)
	var n int64
	h := fnv.New64a()
	r, err := core.Run(g, in, func(a tuple.Assignment) {
		n++
		fmt.Fprint(h, a.String())
	}, core.Options{
		Strategy:    core.StrategyExhaustive,
		Parallelism: par,
	})
	if leaked := d.LiveChildren(); leaked != 0 {
		return nil, 0, 0, extmem.FaultStats{}, fmt.Errorf(
			"chaos arm (workload %d, plan %+v, P=%d) leaked %d child disks", w, plan, par, leaked)
	}
	return r, h.Sum64(), n, d.FaultStats(), err
}

// runE26 sweeps transient fault rates against worker counts on the first
// two memo workloads, asserting the chaos contract: every transient fault
// is retried until the run's published figures — emitted rows and their
// order (fingerprinted), the winning branch's execution stats, and the
// winning policy — are bit-identical to the fault-free run, while a
// permanent fault and a mid-run cancellation each abort with a typed error
// and an intact disk.
func runE26(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title: "E26: chaos sweep (fault-injecting disk, exhaustive strategy)",
		Header: []string{"workload", "arm", "workers", "rows", "exec IOs",
			"identical", "transient", "boundary retries", "backoff IOs"},
	}
	nw := 2
	if nw > len(memoWorkloads) {
		nw = len(memoWorkloads)
	}
	for w := 0; w < nw; w++ {
		name := memoWorkloads[w].name
		base, baseHash, baseRows, _, err := chaosArm(p, w, nil, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "fault-free", 0, baseRows, base.ExecStats.IOs(), "baseline", "-", "-", "-")
		for _, rate := range chaosRates {
			for _, par := range chaosWorkers {
				plan := &extmem.FaultPlan{Seed: p.Seed + 101, TransientRate: rate, MaxAttempts: 1 << 20}
				r, hash, rows, fs, err := chaosArm(p, w, plan, par)
				if err != nil {
					return nil, fmt.Errorf("E26 %s rate %v P=%d: %w", name, rate, par, err)
				}
				ok := rows == baseRows && hash == baseHash &&
					r.ExecStats == base.ExecStats &&
					fmt.Sprint(r.Policy) == fmt.Sprint(base.Policy)
				if !ok {
					return nil, fmt.Errorf("E26 %s rate %v P=%d: run diverged from fault-free baseline", name, rate, par)
				}
				// Fault telemetry is only deterministic on the sequential
				// arm: under workers, memo hit/miss timing batches replayed
				// charges differently run to run. Print it where it is
				// reproducible, dashes elsewhere.
				tr, br, bo := "-", "-", "-"
				if par == 0 {
					tr, br, bo = fmt.Sprint(fs.Transient), fmt.Sprint(fs.BoundaryRetries), fmt.Sprint(fs.BackoffIOs)
				}
				t.AddRow(name, fmt.Sprintf("transient %.2f", rate), par, rows, r.ExecStats.IOs(), "yes", tr, br, bo)
			}
		}
		// Permanent fault and cancellation mid-run: typed errors, no leaks
		// (chaosArm checks the registry on every path).
		mid := (base.TotalStats.IOs() / 2) + 1
		_, _, _, pfs, err := chaosArm(p, w, &extmem.FaultPlan{PermanentAt: mid}, 2)
		var fe *extmem.FaultError
		if !errors.As(err, &fe) || fe.Kind != extmem.FaultPermanent {
			return nil, fmt.Errorf("E26 %s: permanent fault returned %v, want *FaultError", name, err)
		}
		t.AddRow(name, "permanent", 2, "-", "-", "typed error", "-", "-", fmt.Sprint(pfs.Permanent)+" permanent")
		_, _, _, _, err = chaosArm(p, w, &extmem.FaultPlan{CancelAt: mid}, 2)
		if !errors.Is(err, extmem.ErrCancelled) {
			return nil, fmt.Errorf("E26 %s: cancellation returned %v, want ErrCancelled", name, err)
		}
		t.AddRow(name, "cancel", 2, "-", "-", "typed error", "-", "-", "-")
	}
	t.Notes = append(t.Notes,
		"identical = emitted rows and order (FNV fingerprint), exec stats, and winning policy match the fault-free baseline (checked, not assumed)",
		"retry I/O is charged to the fault telemetry side-channel, never the main stats: honest accounting without perturbing the paper's figures",
		"transient/retry columns print only on the sequential arm; under workers, memo timing makes the retry split nondeterministic",
		"permanent and cancel arms abort with typed errors at the next charged I/O; the child-disk registry is asserted empty on every path")
	return t, nil
}

// ChaosBenchResult is the machine-readable chaos record written by
// joinbench -chaosjson (committed as BENCH_chaos.json).
type ChaosBenchResult struct {
	M, B, Scale int
	Seed        int64
	Workloads   []ChaosBenchRow
}

// ChaosBenchRow reports one workload × rate × workers chaos arm.
type ChaosBenchRow struct {
	Name            string
	Rate            float64
	Workers         int
	Rows            int64
	ExecIOs         int64
	Identical       bool  // rows+order, exec stats, policy match fault-free
	Transient       int64 // sequential arms only; 0 under workers
	BoundaryRetries int64
	RetryIOs        int64
	BackoffIOs      int64
}

// ChaosBench runs the E26 transient sweep and returns the machine-readable
// record. All simulated figures are deterministic; the telemetry columns
// are recorded only for the sequential arms (see runE26).
func ChaosBench(p Params) (*ChaosBenchResult, error) {
	p = p.WithDefaults()
	res := &ChaosBenchResult{M: p.M, B: p.B, Scale: p.Scale, Seed: p.Seed}
	nw := 2
	if nw > len(memoWorkloads) {
		nw = len(memoWorkloads)
	}
	for w := 0; w < nw; w++ {
		base, baseHash, baseRows, _, err := chaosArm(p, w, nil, 0)
		if err != nil {
			return nil, err
		}
		for _, rate := range chaosRates {
			for _, par := range chaosWorkers {
				plan := &extmem.FaultPlan{Seed: p.Seed + 101, TransientRate: rate, MaxAttempts: 1 << 20}
				r, hash, rows, fs, err := chaosArm(p, w, plan, par)
				if err != nil {
					return nil, err
				}
				row := ChaosBenchRow{
					Name: memoWorkloads[w].name, Rate: rate, Workers: par,
					Rows: rows, ExecIOs: r.ExecStats.IOs(),
					Identical: rows == baseRows && hash == baseHash &&
						r.ExecStats == base.ExecStats &&
						fmt.Sprint(r.Policy) == fmt.Sprint(base.Policy),
				}
				if par == 0 {
					row.Transient = fs.Transient
					row.BoundaryRetries = fs.BoundaryRetries
					row.RetryIOs = fs.RetryReads + fs.RetryWrites
					row.BackoffIOs = fs.BackoffIOs
				}
				res.Workloads = append(res.Workloads, row)
			}
		}
	}
	return res, nil
}
