package harness

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/extmem/diskfile"
	"acyclicjoin/internal/tuple"
)

func init() {
	Register(&Experiment{
		ID:       "E27",
		Artifact: "storage backends: the charged transfer schedule is physically executable (implementation artifact)",
		Title:    "Backends: sim vs os.File engine — transfer parity, bit-identical results, device telemetry",
		Run:      runE27,
	})
}

// backendRun is one workload evaluation on one backend: the core result, the
// emitted-row fingerprint, the full charged stats, the seam ledger, the
// engine telemetry, and the host wall-clock.
type backendRun struct {
	res  *core.Result
	hash uint64
	rows int64
	full extmem.Stats
	xfer extmem.XferStats
	dev  extmem.DeviceStats
	wall time.Duration
}

// backendArm evaluates memo workload w with the exhaustive strategy on the
// given backend ("sim" or "file"), loading the instance on the free path and
// measuring the run proper, exactly like the other experiment arms. It
// verifies the seam invariant — charged stats equal performed plus replayed
// transfers — before returning.
func backendArm(p Params, w int, backend string, par int) (*backendRun, error) {
	ap := p
	ap.Backend = backend
	d := newDisk(ap)
	eng := d.Backend()
	rng := rand.New(rand.NewSource(p.Seed + int64(w)))
	restore := d.Suspend()
	g, in := memoWorkloads[w].build(p, d, rng)
	restore()
	d.ResetStats()
	var n int64
	h := fnv.New64a()
	start := time.Now()
	r, err := core.Run(g, in, func(a tuple.Assignment) {
		n++
		fmt.Fprint(h, a.String())
	}, core.Options{Strategy: core.StrategyExhaustive, Parallelism: par})
	wall := time.Since(start)
	if err != nil {
		return nil, err
	}
	if leaked := d.LiveChildren(); leaked != 0 {
		return nil, fmt.Errorf("backend arm (%s, workload %d) leaked %d child disks", backend, w, leaked)
	}
	out := &backendRun{res: r, hash: h.Sum64(), rows: n,
		full: d.Stats(), xfer: d.Transfers(), dev: d.DeviceStats(), wall: wall}
	if out.full.Reads != out.xfer.TotalReads() || out.full.Writes != out.xfer.TotalWrites() {
		return nil, fmt.Errorf("backend arm (%s, workload %d): seam parity broken: stats %v vs transfers %+v",
			backend, w, out.full, out.xfer)
	}
	if eng != nil {
		if err := eng.Close(); err != nil {
			return nil, fmt.Errorf("backend arm (%s, workload %d): close engine: %w", backend, w, err)
		}
	}
	return out, nil
}

// compareBackendRuns applies the differential contract: identical rows (count
// and order), identical winning policy, identical execution and full charged
// stats, identical seam ledgers, and — on the file side — engine-observed
// billed transfers exactly equal to the performed side of the ledger.
func compareBackendRuns(name string, sim, file *backendRun) error {
	switch {
	case sim.rows != file.rows || sim.hash != file.hash:
		return fmt.Errorf("E27 %s: emitted rows diverge across backends", name)
	case fmt.Sprint(sim.res.Policy) != fmt.Sprint(file.res.Policy):
		return fmt.Errorf("E27 %s: winning policy diverges across backends", name)
	case sim.res.ExecStats != file.res.ExecStats:
		return fmt.Errorf("E27 %s: exec stats diverge: sim %v, file %v", name, sim.res.ExecStats, file.res.ExecStats)
	case sim.full != file.full:
		return fmt.Errorf("E27 %s: full stats diverge: sim %v, file %v", name, sim.full, file.full)
	case sim.xfer != file.xfer:
		return fmt.Errorf("E27 %s: seam ledgers diverge: sim %+v, file %+v", name, sim.xfer, file.xfer)
	case file.dev.BilledReads != file.xfer.Reads || file.dev.BilledWrites != file.xfer.Writes:
		return fmt.Errorf("E27 %s: engine observed %d/%d billed transfers, ledger performed %d/%d",
			name, file.dev.BilledReads, file.dev.BilledWrites, file.xfer.Reads, file.xfer.Writes)
	case file.dev.CacheHits+file.dev.DeviceServes+file.dev.BackfillServes != file.dev.BilledReads:
		return fmt.Errorf("E27 %s: engine read serves do not cover billed reads: %+v", name, file.dev)
	}
	return nil
}

// runE27 runs every memo workload on both backends sequentially and reports
// the differential outcome plus the file engine's device telemetry. All
// printed columns are deterministic (wall-clock lives in BENCH_backend.json):
// the sequential schedule fixes the device access sequence, so even syscall
// and cache counters reproduce exactly.
func runE27(p Params) (*Table, error) {
	p = p.WithDefaults()
	t := &Table{
		Title: "E27: storage backends — sim vs os.File engine, exhaustive strategy",
		Header: []string{"workload", "rows", "IOs", "xfer R/W", "replayed R/W",
			"preads", "pwrites", "cache hits", "prefetched", "parity", "identical"},
	}
	for w := range memoWorkloads {
		name := memoWorkloads[w].name
		sim, err := backendArm(p, w, "sim", 0)
		if err != nil {
			return nil, err
		}
		file, err := backendArm(p, w, "file", 0)
		if err != nil {
			return nil, err
		}
		if err := compareBackendRuns(name, sim, file); err != nil {
			return nil, err
		}
		t.AddRow(name, file.rows, file.full.IOs(),
			fmt.Sprintf("%d/%d", file.xfer.Reads, file.xfer.Writes),
			fmt.Sprintf("%d/%d", file.xfer.ReplayedReads, file.xfer.ReplayedWrites),
			file.dev.ReadCalls, file.dev.WriteCalls, file.dev.CacheHits, file.dev.Prefetched,
			"exact", "yes")
	}
	t.Notes = append(t.Notes,
		"parity = charged Stats equal seam transfers (performed + memo-replayed) on BOTH backends, and the engine's observed billed transfers equal the performed side exactly",
		"identical = rows+order (FNV fingerprint), winning policy, exec stats, full stats, and seam ledger match across backends bit for bit",
		"preads/pwrites are real syscalls; write batching coalesces contiguous frames, the block cache (M/B frames) absorbs re-reads, sequential scans prefetch ahead",
		"every charged read on the file engine is byte-verified against the in-memory image: a torn or corrupt block panics at the exact transfer that broke")
	return t, nil
}

// BackendBenchResult is the machine-readable differential record written by
// joinbench -backendjson (committed as BENCH_backend.json).
type BackendBenchResult struct {
	M, B, Scale int
	Seed        int64
	// SyncDevice records which device path the file arms ran: true is the
	// synchronous inline path, false the asynchronous pipeline.
	SyncDevice bool
	Workloads  []BackendBenchRow
}

// BackendBenchRow reports one workload's sim-vs-file differential outcome.
type BackendBenchRow struct {
	Name           string
	Rows           int64
	IOs            int64 // full charged I/Os (identical across backends)
	XferReads      int64 // performed transfers at the seam
	XferWrites     int64
	ReplayedReads  int64 // memo-replay transfers at the seam
	ReplayedWrites int64
	ReadCalls      int64 // file engine syscalls
	WriteCalls     int64
	CacheHits      int64
	Prefetched     int64
	PrefetchHits   int64 // prefetched frames a demand read found still cached
	PrefetchWasted int64 // prefetched frames evicted or overwritten untouched
	Evictions      int64
	VerifiedCells  int64
	// Async-pipeline telemetry (zero on the synchronous device path); these
	// four are timing-dependent and live only here, never in the
	// deterministic experiment tables.
	OverlappedWrites  int64
	FlushQueueHiWater int64
	PrefetchInFlight  int64
	DemandWaits       int64
	Parity            bool // stats == transfers on both backends; engine billed == performed
	Identical         bool // rows, policy, exec stats, full stats, ledger bit-identical
	WallNanosSim      int64
	WallNanosFile     int64
	Slowdown          float64 // file wall / sim wall
}

// BackendBench runs the E27 differential on every memo workload and returns
// the machine-readable record, wall-clock included. Wall clocks are
// best-of-3 per arm (the GreedyBench convention): the runs are deterministic,
// so repetitions change nothing but scheduler noise, and every repetition
// still passes the full differential contract.
func BackendBench(p Params) (*BackendBenchResult, error) {
	p = p.WithDefaults()
	res := &BackendBenchResult{M: p.M, B: p.B, Scale: p.Scale, Seed: p.Seed,
		SyncDevice: p.SyncDevice || diskfile.SyncFromEnv()}
	const reps = 3
	for w := range memoWorkloads {
		name := memoWorkloads[w].name
		var sim, file *backendRun
		var cmpErr error
		for i := 0; i < reps; i++ {
			s, err := backendArm(p, w, "sim", 0)
			if err != nil {
				return nil, err
			}
			f, err := backendArm(p, w, "file", 0)
			if err != nil {
				return nil, err
			}
			if err := compareBackendRuns(name, s, f); err != nil {
				cmpErr = err
			}
			if sim == nil || s.wall < sim.wall {
				sim = s
			}
			if file == nil || f.wall < file.wall {
				file = f
			}
		}
		row := BackendBenchRow{
			Name: name, Rows: file.rows, IOs: file.full.IOs(),
			XferReads: file.xfer.Reads, XferWrites: file.xfer.Writes,
			ReplayedReads: file.xfer.ReplayedReads, ReplayedWrites: file.xfer.ReplayedWrites,
			ReadCalls: file.dev.ReadCalls, WriteCalls: file.dev.WriteCalls,
			CacheHits: file.dev.CacheHits, Prefetched: file.dev.Prefetched,
			PrefetchHits: file.dev.PrefetchHits, PrefetchWasted: file.dev.PrefetchWasted,
			Evictions:         file.dev.Evictions,
			VerifiedCells:     file.dev.VerifiedCells,
			OverlappedWrites:  file.dev.OverlappedWrites,
			FlushQueueHiWater: file.dev.FlushQueueHiWater,
			PrefetchInFlight:  file.dev.PrefetchInFlight,
			DemandWaits:       file.dev.DemandWaits,
			Parity:            cmpErr == nil,
			Identical:         cmpErr == nil,
			WallNanosSim:      sim.wall.Nanoseconds(),
			WallNanosFile:     file.wall.Nanoseconds(),
		}
		if sim.wall > 0 {
			row.Slowdown = float64(file.wall) / float64(sim.wall)
		}
		if cmpErr != nil {
			return nil, cmpErr
		}
		res.Workloads = append(res.Workloads, row)
	}
	return res, nil
}
