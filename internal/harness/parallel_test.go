package harness

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/tuple"
)

// checkLeaks asserts the run left no child disks in the registry and no
// extra goroutines (after a grace window for workers to finish exiting).
func checkLeaks(t *testing.T, d *extmem.Disk, goroutinesBefore int) {
	t.Helper()
	if n := d.LiveChildren(); n != 0 {
		t.Errorf("leak check: %d child disks alive after run", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Errorf("leak check: %d goroutines alive, started with %d",
				runtime.NumGoroutine(), goroutinesBefore)
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Running the registry concurrently must reproduce the sequential report
// byte for byte: experiments are independent and RunAll returns outcomes in
// registry order regardless of completion order.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice")
	}
	p := Params{M: 64, B: 8, Scale: 1, Seed: 42}
	render := func(os []Outcome) []string {
		out := make([]string, 0, len(os))
		for _, o := range os {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Exp.ID, o.Err)
			}
			out = append(out, o.Exp.ID+"\n"+o.Table.Render())
		}
		return out
	}
	seq := render(RunAll(All(), p, 1))
	par := render(RunAll(All(), p, 4))
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("outcome %d differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, seq[i], par[i])
		}
	}
}

func TestRunAllEmptyAndSingle(t *testing.T) {
	if got := RunAll(nil, Params{}, 4); len(got) != 0 {
		t.Errorf("RunAll(nil) = %d outcomes", len(got))
	}
	e := All()[0]
	got := RunAll([]*Experiment{e}, Params{M: 64, B: 8, Scale: 1, Seed: 42}, 4)
	if len(got) != 1 || got[0].Exp != e || got[0].Err != nil {
		t.Errorf("single-experiment RunAll = %+v", got)
	}
}

// Harness-style workloads (random tree-structured graphs and instances, the
// same generators the experiments use) through core.Run: with NoPrune every
// Parallelism setting must match the sequential exhaustive Result exactly,
// including the winning-branch plan; under pruning (the default) the pinned
// fields — emitted rows, ExecStats, Policy — must still match the unpruned
// sequential reference at every worker count.
func TestExhaustiveParallelismDeterminism(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		run := func(parallelism int, noPrune bool) (*core.Result, []string, error) {
			rng := rand.New(rand.NewSource(seed))
			d := extmem.NewDisk(extmem.Config{M: 64, B: 4})
			g := randomAcyclicGraph(rng, 3+rng.Intn(3))
			in := randomVerifyInstance(d, rng, g, 20+rng.Intn(20), 4)
			goroutines := runtime.NumGoroutine()
			var rows []string
			r, err := core.Run(g, in, func(a tuple.Assignment) {
				rows = append(rows, a.String())
			}, core.Options{Strategy: core.StrategyExhaustive, Parallelism: parallelism, NoPrune: noPrune})
			checkLeaks(t, d, goroutines)
			return r, rows, err
		}
		wantRes, wantRows, err := run(0, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, n := range []int{1, 4, 8} {
			gotRes, gotRows, err := run(n, true)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, n, err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("seed %d P=%d Result = %+v, want %+v", seed, n, gotRes, wantRes)
			}
			if !reflect.DeepEqual(gotRows, wantRows) {
				t.Errorf("seed %d P=%d emitted rows differ (%d vs %d)", seed, n, len(gotRows), len(wantRows))
			}
		}
		for _, n := range []int{0, 1, 4, 8} {
			gotRes, gotRows, err := run(n, false)
			if err != nil {
				t.Fatalf("seed %d pruned P=%d: %v", seed, n, err)
			}
			if gotRes.Emitted != wantRes.Emitted || gotRes.ExecStats != wantRes.ExecStats {
				t.Errorf("seed %d pruned P=%d: Emitted/ExecStats = %d/%+v, want %d/%+v",
					seed, n, gotRes.Emitted, gotRes.ExecStats, wantRes.Emitted, wantRes.ExecStats)
			}
			if !reflect.DeepEqual(gotRes.Policy, wantRes.Policy) {
				t.Errorf("seed %d pruned P=%d: Policy = %v, want %v", seed, n, gotRes.Policy, wantRes.Policy)
			}
			if !reflect.DeepEqual(gotRows, wantRows) {
				t.Errorf("seed %d pruned P=%d emitted rows differ (%d vs %d)", seed, n, len(gotRows), len(wantRows))
			}
		}
	}
}

// Cancellation mid-branch on harness-style workloads: the run aborts with a
// typed error at every worker count, with zero leaked children/goroutines.
func TestHarnessCancellationMidBranchNoLeaks(t *testing.T) {
	for _, par := range []int{0, 2, 4} {
		rng := rand.New(rand.NewSource(5))
		d := extmem.NewDisk(extmem.Config{M: 64, B: 4})
		g := randomAcyclicGraph(rng, 4)
		in := randomVerifyInstance(d, rng, g, 30, 4)
		d.SetFaultPlan(&extmem.FaultPlan{CancelAt: 50})
		goroutines := runtime.NumGoroutine()
		_, err := core.Run(g, in, func(tuple.Assignment) {}, core.Options{
			Strategy: core.StrategyExhaustive, Parallelism: par})
		checkLeaks(t, d, goroutines)
		if !errors.Is(err, extmem.ErrCancelled) {
			t.Fatalf("P=%d: err = %v, want ErrCancelled", par, err)
		}
	}
}

// A cancelled context skips not-yet-started experiments with a typed error
// in both the sequential and the parallel sweep.
func TestRunAllCtxCancelledSkips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	exps := All()[:3]
	for _, par := range []int{1, 4} {
		for _, o := range RunAllCtx(ctx, exps, Params{M: 64, B: 8, Scale: 1, Seed: 42}, par) {
			if o.Err == nil || !errors.Is(o.Err, context.Canceled) {
				t.Errorf("par %d, %s: err = %v, want context.Canceled", par, o.Exp.ID, o.Err)
			}
			if o.Table != nil {
				t.Errorf("par %d, %s: skipped experiment produced a table", par, o.Exp.ID)
			}
		}
	}
}
