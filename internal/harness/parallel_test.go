package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/tuple"
)

// Running the registry concurrently must reproduce the sequential report
// byte for byte: experiments are independent and RunAll returns outcomes in
// registry order regardless of completion order.
func TestRunAllParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice")
	}
	p := Params{M: 64, B: 8, Scale: 1, Seed: 42}
	render := func(os []Outcome) []string {
		out := make([]string, 0, len(os))
		for _, o := range os {
			if o.Err != nil {
				t.Fatalf("%s: %v", o.Exp.ID, o.Err)
			}
			out = append(out, o.Exp.ID+"\n"+o.Table.Render())
		}
		return out
	}
	seq := render(RunAll(All(), p, 1))
	par := render(RunAll(All(), p, 4))
	if len(seq) != len(par) {
		t.Fatalf("outcome counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("outcome %d differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, seq[i], par[i])
		}
	}
}

func TestRunAllEmptyAndSingle(t *testing.T) {
	if got := RunAll(nil, Params{}, 4); len(got) != 0 {
		t.Errorf("RunAll(nil) = %d outcomes", len(got))
	}
	e := All()[0]
	got := RunAll([]*Experiment{e}, Params{M: 64, B: 8, Scale: 1, Seed: 42}, 4)
	if len(got) != 1 || got[0].Exp != e || got[0].Err != nil {
		t.Errorf("single-experiment RunAll = %+v", got)
	}
}

// Harness-style workloads (random tree-structured graphs and instances, the
// same generators the experiments use) through core.Run: with NoPrune every
// Parallelism setting must match the sequential exhaustive Result exactly,
// including the winning-branch plan; under pruning (the default) the pinned
// fields — emitted rows, ExecStats, Policy — must still match the unpruned
// sequential reference at every worker count.
func TestExhaustiveParallelismDeterminism(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		run := func(parallelism int, noPrune bool) (*core.Result, []string, error) {
			rng := rand.New(rand.NewSource(seed))
			d := extmem.NewDisk(extmem.Config{M: 64, B: 4})
			g := randomAcyclicGraph(rng, 3+rng.Intn(3))
			in := randomVerifyInstance(d, rng, g, 20+rng.Intn(20), 4)
			var rows []string
			r, err := core.Run(g, in, func(a tuple.Assignment) {
				rows = append(rows, a.String())
			}, core.Options{Strategy: core.StrategyExhaustive, Parallelism: parallelism, NoPrune: noPrune})
			return r, rows, err
		}
		wantRes, wantRows, err := run(0, true)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, n := range []int{1, 4, 8} {
			gotRes, gotRows, err := run(n, true)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, n, err)
			}
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("seed %d P=%d Result = %+v, want %+v", seed, n, gotRes, wantRes)
			}
			if !reflect.DeepEqual(gotRows, wantRows) {
				t.Errorf("seed %d P=%d emitted rows differ (%d vs %d)", seed, n, len(gotRows), len(wantRows))
			}
		}
		for _, n := range []int{0, 1, 4, 8} {
			gotRes, gotRows, err := run(n, false)
			if err != nil {
				t.Fatalf("seed %d pruned P=%d: %v", seed, n, err)
			}
			if gotRes.Emitted != wantRes.Emitted || gotRes.ExecStats != wantRes.ExecStats {
				t.Errorf("seed %d pruned P=%d: Emitted/ExecStats = %d/%+v, want %d/%+v",
					seed, n, gotRes.Emitted, gotRes.ExecStats, wantRes.Emitted, wantRes.ExecStats)
			}
			if !reflect.DeepEqual(gotRes.Policy, wantRes.Policy) {
				t.Errorf("seed %d pruned P=%d: Policy = %v, want %v", seed, n, gotRes.Policy, wantRes.Policy)
			}
			if !reflect.DeepEqual(gotRows, wantRows) {
				t.Errorf("seed %d pruned P=%d emitted rows differ (%d vs %d)", seed, n, len(gotRows), len(wantRows))
			}
		}
	}
}
