package harness

import (
	"fmt"
	"math/rand"
	"sort"

	"acyclicjoin/internal/core"
	"acyclicjoin/internal/count"
	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/reducer"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/shard"
	"acyclicjoin/internal/tuple"
)

// VerifySweep runs a randomized correctness sweep: random Berge-acyclic
// queries and instances, every strategy, the line dispatcher, and the
// ablation variant, all checked tuple-for-tuple against the enumeration
// oracle. It returns a summary table and an error on the first mismatch.
func VerifySweep(p Params, trials int) (*Table, error) {
	p = p.WithDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	scope := "all strategies"
	if p.Strategy != "" {
		scope = "strategy " + p.Strategy
	}
	if p.Shards > 1 {
		scope += fmt.Sprintf(" + %d-shard arm", p.Shards)
	}
	t := &Table{
		Title:  fmt.Sprintf("verify: %d random instances per configuration, %s vs oracle", trials, scope),
		Header: []string{"configuration", "trials", "mismatches", "max |Q(R)|"},
	}
	configs := []struct {
		name string
		gen  func(r *rand.Rand) *hypergraph.Graph
	}{
		{"random acyclic 2-5 relations", func(r *rand.Rand) *hypergraph.Graph {
			return randomAcyclicGraph(r, 2+r.Intn(4))
		}},
		{"lines L2-L6", func(r *rand.Rand) *hypergraph.Graph {
			return hypergraph.Line(2 + r.Intn(5))
		}},
		{"stars 2-4 petals", func(r *rand.Rand) *hypergraph.Graph {
			return hypergraph.StarQuery(2 + r.Intn(3))
		}},
		{"lollipop/dumbbell", func(r *rand.Rand) *hypergraph.Graph {
			if r.Intn(2) == 0 {
				return hypergraph.Lollipop(2 + r.Intn(2))
			}
			return hypergraph.Dumbbell(2, 4+r.Intn(2))
		}},
	}
	for _, cfg := range configs {
		maxOut := int64(0)
		for trial := 0; trial < trials; trial++ {
			b := 2 + rng.Intn(3)
			m := b * (3 + rng.Intn(3)) // multiplier >= 3 keeps the merge fan-in valid
			d := newBackendDisk(p, extmem.Config{M: m, B: b})
			g := cfg.gen(rng)
			in := randomVerifyInstance(d, rng, g, 5+rng.Intn(30), 2+rng.Intn(3))
			want, err := oracleSet(g, in)
			if err != nil {
				return nil, err
			}
			if int64(len(want)) > maxOut {
				maxOut = int64(len(want))
			}
			// All strategies on the raw instance, including the concurrent
			// exhaustive path (which must match the sequential one exactly).
			sweep, variant, err := strategySweep(p)
			if err != nil {
				return nil, err
			}
			for _, o := range sweep {
				got, err := runSet(g, in, o)
				if err != nil {
					return nil, fmt.Errorf("%s trial %d strategy %v (parallelism %d): %w", cfg.name, trial, o.Strategy, o.Parallelism, err)
				}
				if err := sameSet(got, want); err != nil {
					return nil, fmt.Errorf("%s trial %d strategy %v (parallelism %d) on %v: %w", cfg.name, trial, o.Strategy, o.Parallelism, g, err)
				}
			}
			// Ablation variant.
			got, err := runSet(g, in, core.Options{Strategy: variant, DisableHeavySplit: true})
			if err != nil {
				return nil, err
			}
			if err := sameSet(got, want); err != nil {
				return nil, fmt.Errorf("%s trial %d no-split on %v: %w", cfg.name, trial, g, err)
			}
			// Shard-parallel arm: the same trial across p.Shards simulated
			// MPC servers, with and without heavy-hitter splitting, must
			// still match the oracle exactly.
			if p.Shards > 1 {
				for _, noSplit := range []bool{false, true} {
					got, err := shardSet(g, in, shard.Options{
						Shards: p.Shards, Core: core.Options{Strategy: variant}, NoHeavySplit: noSplit})
					if err != nil {
						return nil, fmt.Errorf("%s trial %d sharded x%d (nosplit=%v): %w", cfg.name, trial, p.Shards, noSplit, err)
					}
					if err := sameSet(got, want); err != nil {
						return nil, fmt.Errorf("%s trial %d sharded x%d (nosplit=%v) on %v: %w", cfg.name, trial, p.Shards, noSplit, g, err)
					}
				}
			}
			// Reduced path + line dispatcher where applicable.
			red, err := reducer.FullReduce(g, in)
			if err != nil {
				return nil, err
			}
			if _, isLine := g.AsLine(); isLine && g.NumEdges() >= 3 {
				var lines []string
				_, err := core.RunLine(g, red, func(a tuple.Assignment) {
					lines = append(lines, a.String())
				}, core.Options{Strategy: variant, AssumeReduced: true})
				if err != nil {
					return nil, err
				}
				sort.Strings(lines)
				if err := sameSet(lines, want); err != nil {
					return nil, fmt.Errorf("%s trial %d dispatcher on %v: %w", cfg.name, trial, g, err)
				}
			}
		}
		t.AddRow(cfg.name, trials, 0, maxOut)
	}
	t.Notes = append(t.Notes, "a non-zero mismatch count aborts with an error; this table printing means every check passed")
	return t, nil
}

// strategySweep is the option matrix VerifySweep runs per trial, plus the
// strategy its ablation/dispatcher variants use. Empty Params.Strategy
// sweeps everything (variants on StrategySmallest, as always); a named
// strategy restricts the sweep and the variants to that strategy's arms,
// which is how CI re-runs the whole randomized suite under one planner
// (e.g. ACYCLICJOIN_STRATEGY=greedy) with no code changes.
func strategySweep(p Params) ([]core.Options, core.Strategy, error) {
	all := []core.Options{
		{Strategy: core.StrategyFirst},
		{Strategy: core.StrategySmallest},
		{Strategy: core.StrategyGreedy},
		{Strategy: core.StrategyExhaustive},
		{Strategy: core.StrategyExhaustive, NoPrune: true},
		{Strategy: core.StrategyExhaustive, Parallelism: 4},
	}
	if p.Strategy == "" {
		return all, core.StrategySmallest, nil
	}
	var want core.Strategy
	switch p.Strategy {
	case "exhaustive":
		want = core.StrategyExhaustive
	case "first":
		want = core.StrategyFirst
	case "smallest":
		want = core.StrategySmallest
	case "greedy":
		want = core.StrategyGreedy
	default:
		return nil, 0, fmt.Errorf("harness: unknown strategy %q (want exhaustive, first, smallest, or greedy)", p.Strategy)
	}
	var out []core.Options
	for _, o := range all {
		if o.Strategy == want {
			out = append(out, o)
		}
	}
	return out, want, nil
}

func oracleSet(g *hypergraph.Graph, in relation.Instance) ([]string, error) {
	var out []string
	err := count.Enumerate(g, in, func(a tuple.Assignment) { out = append(out, a.String()) })
	sort.Strings(out)
	return out, err
}

func runSet(g *hypergraph.Graph, in relation.Instance, opts core.Options) ([]string, error) {
	var out []string
	_, err := core.Run(g, in, func(a tuple.Assignment) { out = append(out, a.String()) }, opts)
	sort.Strings(out)
	return out, err
}

func shardSet(g *hypergraph.Graph, in relation.Instance, opts shard.Options) ([]string, error) {
	var out []string
	_, err := shard.Run(g, in, func(a tuple.Assignment) { out = append(out, a.String()) }, opts)
	sort.Strings(out)
	return out, err
}

func sameSet(got, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("result %d = %q, want %q", i, got[i], want[i])
		}
	}
	return nil
}

func randomVerifyInstance(d *extmem.Disk, rng *rand.Rand, g *hypergraph.Graph, rows, domain int) relation.Instance {
	in := relation.Instance{}
	for _, e := range g.Edges() {
		schema := make(tuple.Schema, len(e.Attrs))
		copy(schema, e.Attrs)
		seen := map[string]bool{}
		var rs []tuple.Tuple
		for k := 0; k < rows; k++ {
			t := make(tuple.Tuple, len(schema))
			for j := range t {
				t[j] = int64(rng.Intn(domain))
			}
			key := fmt.Sprint(t)
			if !seen[key] {
				seen[key] = true
				rs = append(rs, t)
			}
		}
		in[e.ID] = relation.FromTuples(d, schema, rs)
	}
	return in
}
