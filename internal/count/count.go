// Package count provides exact cardinalities for the quantities the paper's
// bounds are stated in: subjoin sizes |⋈_{e∈S} R(e)| (via a join-forest
// dynamic program with per-tuple counts, no enumeration), partial join sizes
// |Q(R,S)| (the projection of the full join onto S's attributes, via
// backtracking enumeration), and the derived lower-bound quantities Ψ(R,S)
// and ψ(R,S) of Section 1.4.
//
// These are analysis and verification tools, not algorithms under
// measurement: they run with the simulated disk's I/O charging suspended so
// that computing a bound never pollutes an experiment's counters.
package count

import (
	"fmt"
	"math"

	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/tuple"
)

// SubjoinSize returns |⋈_{e∈S} R(e)| for the edges with the given IDs. If S
// is disconnected, the subjoin is the cross product of its connected
// components' joins (the paper's convention), so the result is the product
// of the per-component counts. The subquery must be Berge-acyclic. Counts
// are returned as float64 to tolerate astronomically large cross products.
func SubjoinSize(g *hypergraph.Graph, in relation.Instance, s []int) (float64, error) {
	if len(s) == 0 {
		return 1, nil
	}
	sub := g.Subgraph(s)
	if sub.NumEdges() != len(s) {
		return 0, fmt.Errorf("count: unknown edge ID in %v", s)
	}
	var restore func()
	for _, e := range sub.Edges() {
		restore = in[e.ID].Disk().Suspend()
		break
	}
	if restore != nil {
		defer restore()
	}
	total := 1.0
	for _, comp := range sub.Components() {
		ids := make([]int, len(comp))
		for i, pos := range comp {
			ids[i] = sub.Edges()[pos].ID
		}
		c, err := connectedJoinSize(sub.Subgraph(ids), in)
		if err != nil {
			return 0, err
		}
		total *= c
	}
	return total, nil
}

// connectedJoinSize computes the join cardinality of a connected acyclic
// subquery by the standard count DP over a join forest: the weight of a
// tuple is the product over children of the summed weights of matching
// child tuples; the answer is the summed weight at the root.
func connectedJoinSize(g *hypergraph.Graph, in relation.Instance) (float64, error) {
	parent, order, err := g.JoinForest()
	if err != nil {
		return 0, err
	}
	edges := g.Edges()
	// weights[i] maps a tuple (by its projection onto the edge's live
	// attributes, encoded as a string key) to its DP weight. Tuples are
	// deduplicated on the edge's attribute set (set semantics).
	weights := make([]map[string]float64, len(edges))
	keys := make([][]tuple.Tuple, len(edges)) // attr-projected rows, deduped
	for i, e := range edges {
		rows := relation.Contents(in[e.ID])
		w := map[string]float64{}
		var uniq []tuple.Tuple
		cols := make([]int, len(e.Attrs))
		for j, a := range e.Attrs {
			cols[j] = in[e.ID].Col(a)
		}
		for _, t := range rows {
			proj := make(tuple.Tuple, len(cols))
			for j, c := range cols {
				proj[j] = t[c]
			}
			k := keyOf(proj)
			if _, ok := w[k]; !ok {
				w[k] = 1
				uniq = append(uniq, proj)
			}
		}
		weights[i] = w
		keys[i] = uniq
	}
	// Children lists.
	children := make([][]int, len(edges))
	for i, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	// Process in reverse preorder: children before parents.
	for oi := len(order) - 1; oi >= 0; oi-- {
		u := order[oi]
		for _, c := range children[u] {
			a := hypergraph.SharedAttr(edges[u], edges[c])
			if a < 0 {
				return 0, fmt.Errorf("count: forest link without shared attribute")
			}
			// Sum child weights per shared value.
			cPos := attrPos(edges[c], a)
			sums := map[int64]float64{}
			for _, t := range keys[c] {
				sums[t[cPos]] += weights[c][keyOf(t)]
			}
			uPos := attrPos(edges[u], a)
			for _, t := range keys[u] {
				weights[u][keyOf(t)] *= sums[t[uPos]]
			}
		}
	}
	total := 0.0
	for i, p := range parent {
		if p != -1 {
			continue
		}
		s := 0.0
		for _, t := range keys[i] {
			s += weights[i][keyOf(t)]
		}
		total = s // connected: exactly one root
	}
	return total, nil
}

func attrPos(e *hypergraph.Edge, a hypergraph.Attr) int {
	for i, x := range e.Attrs {
		if x == a {
			return i
		}
	}
	panic(fmt.Sprintf("count: attribute v%d not in %s", a, e))
}

func keyOf(t tuple.Tuple) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}

// Enumerate produces every join result of g on in by in-memory backtracking,
// calling emit with an assignment over the query's attributes. It is the
// correctness oracle for the external-memory algorithms and the basis for
// partial join counting; intended for test-scale instances only. Duplicate
// tuples in a relation are collapsed (set semantics).
func Enumerate(g *hypergraph.Graph, in relation.Instance, emit func(tuple.Assignment)) error {
	edges := g.Edges()
	if len(edges) == 0 {
		emit(tuple.NewAssignment(0))
		return nil
	}
	var restore func()
	for _, e := range edges {
		restore = in[e.ID].Disk().Suspend()
		break
	}
	if restore != nil {
		defer restore()
	}
	// Order edges so each (after the first of its component) shares an
	// attribute with an earlier one when possible: connectivity order.
	order := connectivityOrder(g)
	rows := make([][]tuple.Tuple, len(order))
	schemas := make([]tuple.Schema, len(order))
	for i, pos := range order {
		e := edges[pos]
		r := in[e.ID]
		all := relation.Contents(r)
		// Project to edge attributes and dedup (set semantics).
		cols := make([]int, len(e.Attrs))
		for j, a := range e.Attrs {
			cols[j] = r.Col(a)
		}
		seen := map[string]bool{}
		for _, t := range all {
			proj := make(tuple.Tuple, len(cols))
			for j, c := range cols {
				proj[j] = t[c]
			}
			k := keyOf(proj)
			if !seen[k] {
				seen[k] = true
				rows[i] = append(rows[i], proj)
			}
		}
		schemas[i] = make(tuple.Schema, len(e.Attrs))
		copy(schemas[i], e.Attrs)
	}
	asg := tuple.NewAssignment(g.MaxAttr() + 1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(order) {
			emit(asg)
			return
		}
		s := schemas[i]
	next:
		for _, t := range rows[i] {
			// Consistency with already-bound attributes.
			for j, a := range s {
				if asg.Has(a) && asg.Get(a) != t[j] {
					continue next
				}
			}
			bound := make([]bool, len(s))
			for j, a := range s {
				if !asg.Has(a) {
					asg.Set(a, t[j])
					bound[j] = true
				}
			}
			rec(i + 1)
			for j, a := range s {
				if bound[j] {
					asg[a] = tuple.Unset
				}
			}
		}
	}
	rec(0)
	return nil
}

func connectivityOrder(g *hypergraph.Graph) []int {
	edges := g.Edges()
	n := len(edges)
	used := make([]bool, n)
	var order []int
	boundAttrs := map[hypergraph.Attr]bool{}
	for len(order) < n {
		pick := -1
		for i, e := range edges {
			if used[i] {
				continue
			}
			for _, a := range e.Attrs {
				if boundAttrs[a] {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := range edges {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		order = append(order, pick)
		for _, a := range edges[pick].Attrs {
			boundAttrs[a] = true
		}
	}
	return order
}

// FullJoinSize returns |Q(R)| by enumeration (test scale).
func FullJoinSize(g *hypergraph.Graph, in relation.Instance) (int64, error) {
	var n int64
	err := Enumerate(g, in, func(tuple.Assignment) { n++ })
	return n, err
}

// PartialJoinSize returns |Q(R,S)|: the number of distinct projections of
// full join results onto the attributes of the edges in S (Section 1.4).
// Computed by enumeration; test scale only.
func PartialJoinSize(g *hypergraph.Graph, in relation.Instance, s []int) (int64, error) {
	attrs := map[hypergraph.Attr]bool{}
	for _, id := range s {
		e := g.Edge(id)
		if e == nil {
			return 0, fmt.Errorf("count: unknown edge ID %d", id)
		}
		for _, a := range e.Attrs {
			attrs[a] = true
		}
	}
	var proj tuple.Schema
	for a := 0; a <= g.MaxAttr(); a++ {
		if attrs[a] {
			proj = append(proj, a)
		}
	}
	seen := map[string]bool{}
	err := Enumerate(g, in, func(asg tuple.Assignment) {
		t := asg.Project(proj)
		seen[keyOf(t)] = true
	})
	return int64(len(seen)), err
}

// Psi returns Ψ(R,S) = Π_{S'∈C(S)} |⋈_{e∈S'} R(e)| / (M^{|S|−1}·B): the
// scaled subjoin size that lower-bounds the I/O cost of producing the
// subjoin on S (Theorem 2's per-term bound).
func Psi(g *hypergraph.Graph, in relation.Instance, s []int, m, b int) (float64, error) {
	if len(s) == 0 {
		return 0, nil
	}
	size, err := SubjoinSize(g, in, s)
	if err != nil {
		return 0, err
	}
	return size / (math.Pow(float64(m), float64(len(s)-1)) * float64(b)), nil
}

// PsiLower returns ψ(R,S) = |Q(R,S)| / (M^{|S|−1}·B): the partial-join form
// used for lower bounds (each I/O brings B tuples which combine with at most
// M^{|S|−1} memory-resident combinations).
func PsiLower(g *hypergraph.Graph, in relation.Instance, s []int, m, b int) (float64, error) {
	if len(s) == 0 {
		return 0, nil
	}
	size, err := PartialJoinSize(g, in, s)
	if err != nil {
		return 0, err
	}
	return float64(size) / (math.Pow(float64(m), float64(len(s)-1)) * float64(b)), nil
}

// PsiFromSizes evaluates Ψ for a hypothetical instance given per-component
// subjoin sizes already known analytically: sizes is the list of connected-
// component subjoin cardinalities, k the total number of edges in S.
func PsiFromSizes(sizes []float64, k, m, b int) float64 {
	prod := 1.0
	for _, s := range sizes {
		prod *= s
	}
	return prod / (math.Pow(float64(m), float64(k-1)) * float64(b))
}
