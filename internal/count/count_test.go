package count

import (
	"math"
	"math/rand"
	"testing"

	"acyclicjoin/internal/extmem"
	"acyclicjoin/internal/hypergraph"
	"acyclicjoin/internal/relation"
	"acyclicjoin/internal/tuple"
)

func disk() *extmem.Disk { return extmem.NewDisk(extmem.Config{M: 16, B: 4}) }

// fig1Instance builds an L3 instance in the spirit of Figure 1: R1 and R3
// cross products through shared endpoints, R2 a partial matching, so the
// subjoin on {R1,R3} (cross product) strictly exceeds the partial join.
func fig1Instance(d *extmem.Disk) (*hypergraph.Graph, relation.Instance) {
	g := hypergraph.Line(3) // attrs 0..3 = A,B,C,D
	in := relation.Instance{
		0: relation.FromTuples(d, tuple.Schema{0, 1}, []tuple.Tuple{
			{1, 1}, {2, 1}, {3, 2},
		}),
		1: relation.FromTuples(d, tuple.Schema{1, 2}, []tuple.Tuple{
			{1, 1}, {2, 2},
		}),
		2: relation.FromTuples(d, tuple.Schema{2, 3}, []tuple.Tuple{
			{1, 1}, {1, 2}, {2, 3},
		}),
	}
	return g, in
}

func TestFullJoinSizeL3(t *testing.T) {
	g, in := fig1Instance(disk())
	n, err := FullJoinSize(g, in)
	if err != nil {
		t.Fatal(err)
	}
	// Paths: (1,1)-(1,1)-(1,1),(1,2); (2,1)-(1,1)-(1,1),(1,2); (3,2)-(2,2)-(2,3).
	if n != 5 {
		t.Fatalf("|Q(R)| = %d, want 5", n)
	}
}

func TestSubjoinVsPartialJoin(t *testing.T) {
	g, in := fig1Instance(disk())
	// Subjoin on {R1,R3} is the cross product: 3*3 = 9.
	sub, err := SubjoinSize(g, in, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub != 9 {
		t.Fatalf("subjoin = %v, want 9", sub)
	}
	// Partial join on {R1,R3}: distinct (A,B,C,D) combos from full join = 5.
	part, err := PartialJoinSize(g, in, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if part != 5 {
		t.Fatalf("partial = %d, want 5", part)
	}
	// Connected S: subjoin == partial join on fully reduced; here {R1,R2} is
	// connected. Note our instance is fully reduced by construction.
	sub12, err := SubjoinSize(g, in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	part12, err := PartialJoinSize(g, in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub12 != float64(part12) {
		t.Fatalf("connected subjoin %v != partial %d", sub12, part12)
	}
}

func TestSubjoinSingleAndEmpty(t *testing.T) {
	g, in := fig1Instance(disk())
	s, err := SubjoinSize(g, in, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if s != 2 {
		t.Fatalf("single-edge subjoin = %v, want 2", s)
	}
	s, err = SubjoinSize(g, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("empty subjoin = %v, want 1", s)
	}
	if _, err := SubjoinSize(g, in, []int{99}); err == nil {
		t.Fatal("unknown edge accepted")
	}
}

func TestEnumerateDedupsSetSemantics(t *testing.T) {
	d := disk()
	g := hypergraph.Line(2)
	in := relation.Instance{
		0: relation.FromTuples(d, tuple.Schema{0, 1}, []tuple.Tuple{{1, 5}, {1, 5}}),
		1: relation.FromTuples(d, tuple.Schema{1, 2}, []tuple.Tuple{{5, 9}}),
	}
	n, err := FullJoinSize(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("duplicate tuples should collapse: %d", n)
	}
}

func TestEnumerateDisconnected(t *testing.T) {
	d := disk()
	g := hypergraph.MustNew([]*hypergraph.Edge{
		{ID: 0, Attrs: []int{0}},
		{ID: 1, Attrs: []int{1}},
	})
	in := relation.Instance{
		0: relation.FromTuples(d, tuple.Schema{0}, []tuple.Tuple{{1}, {2}}),
		1: relation.FromTuples(d, tuple.Schema{1}, []tuple.Tuple{{7}, {8}, {9}}),
	}
	n, err := FullJoinSize(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("cross product size = %d, want 6", n)
	}
	sub, err := SubjoinSize(g, in, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub != 6 {
		t.Fatalf("disconnected subjoin = %v, want 6", sub)
	}
}

func TestPsiFormulas(t *testing.T) {
	g, in := fig1Instance(disk())
	m, b := 16, 4
	psi, err := Psi(g, in, []int{0, 2}, m, b)
	if err != nil {
		t.Fatal(err)
	}
	want := 9.0 / (16 * 4)
	if math.Abs(psi-want) > 1e-12 {
		t.Fatalf("Psi = %v, want %v", psi, want)
	}
	lo, err := PsiLower(g, in, []int{0, 2}, m, b)
	if err != nil {
		t.Fatal(err)
	}
	want = 5.0 / (16 * 4)
	if math.Abs(lo-want) > 1e-12 {
		t.Fatalf("psi = %v, want %v", lo, want)
	}
	if got := PsiFromSizes([]float64{3, 3}, 2, m, b); math.Abs(got-9.0/64) > 1e-12 {
		t.Fatalf("PsiFromSizes = %v", got)
	}
	// |S| = 1: just size/B.
	one, err := Psi(g, in, []int{0}, m, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one-3.0/4) > 1e-12 {
		t.Fatalf("Psi single = %v", one)
	}
}

// Property: the DP subjoin size equals brute-force enumeration of the
// subquery on random acyclic instances.
func TestSubjoinDPMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		d := disk()
		n := 2 + rng.Intn(4)
		g := hypergraph.Line(n)
		in := relation.Instance{}
		for i := 0; i < n; i++ {
			var rows []tuple.Tuple
			for k := 0; k < 3+rng.Intn(12); k++ {
				rows = append(rows, tuple.Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
			}
			in[i] = relation.FromTuples(d, tuple.Schema{i, i + 1}, rows)
		}
		// Random subset S.
		var s []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s = append(s, i)
			}
		}
		if len(s) == 0 {
			s = []int{0}
		}
		dp, err := SubjoinSize(g, in, s)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force on the subquery (its own full join).
		sub := g.Subgraph(s)
		bf, err := FullJoinSize(sub, in)
		if err != nil {
			t.Fatal(err)
		}
		if dp != float64(bf) {
			t.Fatalf("DP %v != brute force %d on S=%v (trial %d)", dp, bf, s, trial)
		}
	}
}

// On fully-reduced connected instances, subjoin == partial join (the paper's
// observation in Section 1.4).
func TestConnectedSubjoinEqualsPartialWhenReduced(t *testing.T) {
	d := disk()
	g := hypergraph.Line(3)
	// A fully reduced instance: complete bipartite layers.
	var r1, r2, r3 []tuple.Tuple
	for a := int64(0); a < 3; a++ {
		for b := int64(0); b < 2; b++ {
			r1 = append(r1, tuple.Tuple{a, b})
			r3 = append(r3, tuple.Tuple{b, a})
		}
	}
	for b := int64(0); b < 2; b++ {
		for c := int64(0); c < 2; c++ {
			r2 = append(r2, tuple.Tuple{b, c})
		}
	}
	in := relation.Instance{
		0: relation.FromTuples(d, tuple.Schema{0, 1}, r1),
		1: relation.FromTuples(d, tuple.Schema{1, 2}, r2),
		2: relation.FromTuples(d, tuple.Schema{2, 3}, r3),
	}
	for _, s := range [][]int{{0, 1}, {1, 2}, {0, 1, 2}} {
		sub, err := SubjoinSize(g, in, s)
		if err != nil {
			t.Fatal(err)
		}
		part, err := PartialJoinSize(g, in, s)
		if err != nil {
			t.Fatal(err)
		}
		if sub != float64(part) {
			t.Fatalf("S=%v: subjoin %v != partial %d", s, sub, part)
		}
	}
}

func TestEnumerateEmptyQuery(t *testing.T) {
	g := hypergraph.MustNew(nil)
	n := 0
	if err := Enumerate(g, relation.Instance{}, func(tuple.Assignment) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("empty query results = %d, want 1", n)
	}
}
