package acyclicjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// devFaultDifferentialRates is the acceptance grid: at every rate the faulted
// file run must reproduce the fault-free run bit for bit.
var devFaultDifferentialRates = []float64{0.02, 0.05, 0.20}

// TestDeviceFaultDifferentialRates is the PR's differential proof: random
// acyclic queries through the public API with device-level faults injected
// under the file engine — transient EIO plus torn writes — at every sweep
// rate and shard count, compared against the fault-free file run and the
// counting simulator. The full public Result (rows in emission order, Count,
// Stats, Plan, the shard load table) is bit-identical; all retry and repair
// traffic lands in the Faults.Device side channel, never the main Stats.
func TestDeviceFaultDifferentialRates(t *testing.T) {
	var injected int64
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		q := randomTreeQuery(rng)
		inst := q.NewInstance()
		fillRandom(rng, q, inst, trial%3 == 0)
		for _, shards := range []int{1, 3} {
			base := Options{Memory: 64, Block: 8, Shards: shards}
			simOpts := base
			simOpts.Backend = "sim"
			fileOpts := base
			fileOpts.Backend = "file"
			simRes, simRows := backendRunRows(t, q, inst, simOpts)
			fileRes, fileRows := backendRunRows(t, q, inst, fileOpts)
			for _, rate := range devFaultDifferentialRates {
				label := fmt.Sprintf("trial %d shards %d rate %v", trial, shards, rate)
				faultOpts := fileOpts
				faultOpts.DeviceFaults = &DeviceFaultPlan{
					Seed: int64(trial)*31 + 9, Rate: rate, TornRate: rate / 2}
				faultRes, faultRows := backendRunRows(t, q, inst, faultOpts)
				if len(faultRows) != len(fileRows) {
					t.Fatalf("%s: emitted %d rows faulted, %d fault-free", label, len(faultRows), len(fileRows))
				}
				for i := range fileRows {
					if faultRows[i] != fileRows[i] {
						t.Fatalf("%s: row %d diverges: faulted %q, fault-free %q", label, i, faultRows[i], fileRows[i])
					}
					if simRows[i] != fileRows[i] {
						t.Fatalf("%s: row %d diverges across backends: sim %q, file %q", label, i, simRows[i], fileRows[i])
					}
				}
				if faultRes.Count != fileRes.Count || faultRes.Stats != fileRes.Stats ||
					faultRes.Plan != fileRes.Plan || faultRes.Stats != simRes.Stats {
					t.Fatalf("%s: results diverge:\nfaulted    %+v\nfault-free %+v", label, faultRes, fileRes)
				}
				if fs, ws := faultRes.Shards, fileRes.Shards; (fs == nil) != (ws == nil) {
					t.Fatalf("%s: shard telemetry presence diverges", label)
				} else if fs != nil && fmt.Sprint(fs.Rounds) != fmt.Sprint(ws.Rounds) {
					t.Fatalf("%s: shard load table diverges:\nfaulted    %+v\nfault-free %+v", label, fs.Rounds, ws.Rounds)
				}
				checkTransferParity(t, label, faultRes)
				dev := faultRes.Faults.Device
				injected += dev.InjectedReads + dev.InjectedWrites + dev.TornWrites
				if dev.NoSpace != 0 || dev.DeviceDead != 0 || dev.Degraded != 0 {
					t.Fatalf("%s: transient plan reported terminal telemetry: %+v", label, dev)
				}
			}
		}
	}
	if injected == 0 {
		t.Fatal("the sweep injected no device faults; the plan never reached the engine")
	}
}

// TestDeviceFaultNoSpaceTyped exhausts the arena growth cap: the run aborts
// with a typed ErrNoSpace — no panic — and a partial Result whose device
// telemetry records the space failure. ENOSPC is never retried.
func TestDeviceFaultNoSpaceTyped(t *testing.T) {
	q, inst := buildTinyQuery(t)
	res, err := Run(q, inst, Options{Memory: 64, Block: 8, Backend: "file",
		DeviceFaults: &DeviceFaultPlan{NoSpaceAfter: 512}}, nil)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if res == nil {
		t.Fatal("no partial Result returned with the typed error")
	}
	dev := res.Faults.Device
	if dev.NoSpace < 1 {
		t.Fatalf("NoSpace = %d, want >= 1", dev.NoSpace)
	}
	if dev.Retries != 0 {
		t.Fatalf("space exhaustion was retried %d times; ENOSPC is permanent", dev.Retries)
	}
}

// TestDeviceFaultDataDirHygiene pins the arena hygiene contract under an
// aborted run: with a retained -datadir, the backing file must be gone after
// RunContext returns the typed ENOSPC error — the deferred engine close runs
// on the failure path too.
func TestDeviceFaultDataDirHygiene(t *testing.T) {
	dir := t.TempDir()
	q, inst := buildTinyQuery(t)
	_, err := Run(q, inst, Options{Memory: 64, Block: 8, Backend: "file", DataDir: dir,
		DeviceFaults: &DeviceFaultPlan{NoSpaceAfter: 512}}, nil)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	left, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(left) != 0 {
		var names []string
		for _, e := range left {
			names = append(names, filepath.Join(dir, e.Name()))
		}
		t.Fatalf("backing files leaked after aborted run: %v", names)
	}
}

// TestDeviceFaultDeadDeviceTyped kills the device outright: every syscall
// from the trigger on fails, the bounded retry budget exhausts, and the run
// aborts with a typed ErrDevice and a partial Result.
func TestDeviceFaultDeadDeviceTyped(t *testing.T) {
	q, inst := buildTinyQuery(t)
	res, err := Run(q, inst, Options{Memory: 64, Block: 8, Backend: "file",
		DeviceFaults: &DeviceFaultPlan{DeadAt: 10}}, nil)
	if !errors.Is(err, ErrDevice) {
		t.Fatalf("err = %v, want ErrDevice", err)
	}
	if res == nil {
		t.Fatal("no partial Result returned with the typed error")
	}
	if res.Faults.Device.DeviceDead != 1 {
		t.Fatalf("DeviceDead = %d, want 1", res.Faults.Device.DeviceDead)
	}
}

// TestDeviceFaultDegradedFallback sets Degrade on a dead-device plan: instead
// of the typed error, the run transparently re-executes on the counting
// simulator and succeeds, reporting Degraded on the Result and in the device
// telemetry. The recomputed figures match a fault-free sim run exactly.
func TestDeviceFaultDegradedFallback(t *testing.T) {
	q, inst := buildTinyQuery(t)
	wantRes, wantRows := backendRunRows(t, q, inst, Options{Memory: 64, Block: 8, Backend: "sim"})
	var rows []string
	res, err := Run(q, inst, Options{Memory: 64, Block: 8, Backend: "file",
		DeviceFaults: &DeviceFaultPlan{DeadAt: 10, Degrade: true}},
		func(row Row) { rows = append(rows, canonRow(q, row)) })
	if err != nil {
		t.Fatalf("degraded run: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Result.Degraded not set")
	}
	if res.Backend != "sim" {
		t.Fatalf("Backend = %q, want sim after degradation", res.Backend)
	}
	if res.Faults.Device.Degraded != 1 {
		t.Fatalf("Device.Degraded = %d, want 1", res.Faults.Device.Degraded)
	}
	if len(rows) != len(wantRows) {
		t.Fatalf("emitted %d rows degraded, %d fault-free", len(rows), len(wantRows))
	}
	for i := range rows {
		if rows[i] != wantRows[i] {
			t.Fatalf("row %d diverges: degraded %q, fault-free %q", i, rows[i], wantRows[i])
		}
	}
	if res.Count != wantRes.Count || res.Stats != wantRes.Stats || res.Plan != wantRes.Plan {
		t.Fatalf("degraded result diverges:\ndegraded   %+v\nfault-free %+v", res, wantRes)
	}
}

// TestDeviceFaultSimBackendNoop pins the documented scoping: a DeviceFaults
// plan on the sim backend is a no-op — there are no syscalls to fault — and
// the run matches a plan-free run exactly, with zero device telemetry.
func TestDeviceFaultSimBackendNoop(t *testing.T) {
	q, inst := buildTinyQuery(t)
	wantRes, wantRows := backendRunRows(t, q, inst, Options{Memory: 64, Block: 8, Backend: "sim"})
	gotRes, gotRows := backendRunRows(t, q, inst, Options{Memory: 64, Block: 8, Backend: "sim",
		DeviceFaults: &DeviceFaultPlan{Rate: 0.5, TornRate: 0.5, DeadAt: 3}})
	if gotRes.Faults.Device != (DeviceFaultStats{}) {
		t.Fatalf("sim backend reported device-fault telemetry: %+v", gotRes.Faults.Device)
	}
	if gotRes.Count != wantRes.Count || gotRes.Stats != wantRes.Stats ||
		len(gotRows) != len(wantRows) {
		t.Fatalf("sim run changed under a device plan:\nwith plan %+v\nwithout   %+v", gotRes, wantRes)
	}
}

// TestDeviceFaultEnvFallback proves the $ACYCLICJOIN_DEVFAULT* variables arm
// a default-options run — the hook the CI chaos-device job uses to re-run the
// whole suite faulted without code changes — and that RunContext rejects a
// malformed value with a typed, named error instead of silently ignoring it.
func TestDeviceFaultEnvFallback(t *testing.T) {
	t.Setenv("ACYCLICJOIN_BACKEND", "file")
	t.Setenv("ACYCLICJOIN_DEVFAULTRATE", "0.5")
	t.Setenv("ACYCLICJOIN_DEVFAULTSEED", "9")
	q, inst := buildTinyQuery(t)
	want, wantRows := backendRunRows(t, q, inst, Options{Memory: 64, Block: 8, DeviceFaults: &DeviceFaultPlan{}})
	res, rows := backendRunRows(t, q, inst, Options{Memory: 64, Block: 8})
	if res.Backend != "file" {
		t.Fatalf("Backend = %q, want file via env", res.Backend)
	}
	dev := res.Faults.Device
	if dev.InjectedReads+dev.InjectedWrites == 0 {
		t.Fatalf("env-armed plan injected nothing: %+v", dev)
	}
	// An explicit (if empty) plan in Options must shadow the env knobs.
	if want.Faults.Device != (DeviceFaultStats{}) {
		t.Fatalf("explicit plan did not shadow the env: %+v", want.Faults.Device)
	}
	if res.Count != want.Count || res.Stats != want.Stats || len(rows) != len(wantRows) {
		t.Fatalf("faulted env run diverges:\nfaulted    %+v\nfault-free %+v", res, want)
	}

	t.Setenv("ACYCLICJOIN_DEVFAULTRATE", "banana")
	if _, err := Run(q, inst, Options{Memory: 64, Block: 8}, nil); err == nil ||
		!strings.Contains(err.Error(), "ACYCLICJOIN_DEVFAULTRATE") ||
		!strings.Contains(err.Error(), "banana") {
		t.Fatalf("bad env rate: err = %v, want it named with the value", err)
	}
}

// FuzzDevFaultOracle is the randomized arm of the differential proof: a
// random acyclic query, a random device fault schedule, a random shard count
// and memo mode — the faulted file run must match the fault-free file run and
// the counting simulator on the full public Result, with all recovery in the
// side channel. Corpus seeds cover each rate tier, sharding, and MemoOff.
func FuzzDevFaultOracle(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(42), uint8(20), uint8(1))
	f.Add(int64(7), uint8(5), uint8(3))
	f.Add(int64(99), uint8(25), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, ratePct, mode uint8) {
		rate := float64(ratePct%26) / 100 // 0 to 0.25
		rng := rand.New(rand.NewSource(seed))
		q := randomTreeQuery(rng)
		inst := q.NewInstance()
		fillRandom(rng, q, inst, mode&4 != 0)
		opts := Options{Memory: 64, Block: 8, Shards: int(mode%2)*2 + 1}
		if mode&2 != 0 {
			opts.Memo = MemoOff
		}
		simOpts := opts
		simOpts.Backend = "sim"
		fileOpts := opts
		fileOpts.Backend = "file"
		faultOpts := fileOpts
		faultOpts.DeviceFaults = &DeviceFaultPlan{Seed: seed ^ 0x5eed, Rate: rate, TornRate: rate / 2}
		simRes, simRows := backendRunRows(t, q, inst, simOpts)
		fileRes, fileRows := backendRunRows(t, q, inst, fileOpts)
		faultRes, faultRows := backendRunRows(t, q, inst, faultOpts)
		if len(simRows) != len(fileRows) || len(fileRows) != len(faultRows) {
			t.Fatalf("row counts diverge: sim %d, file %d, faulted %d", len(simRows), len(fileRows), len(faultRows))
		}
		for i := range simRows {
			if simRows[i] != fileRows[i] || fileRows[i] != faultRows[i] {
				t.Fatalf("row %d diverges: sim %q, file %q, faulted %q", i, simRows[i], fileRows[i], faultRows[i])
			}
		}
		if simRes.Count != faultRes.Count || simRes.Stats != faultRes.Stats || simRes.Plan != faultRes.Plan {
			t.Fatalf("results diverge:\nsim     %+v\nfaulted %+v", simRes, faultRes)
		}
		// The performed/replayed transfer split is timing-dependent when
		// shard servers run concurrently against the shared operator memo
		// (on both arms — nothing to do with faults), so the ledger identity
		// is asserted only on the sequential path, mirroring the
		// deterministic gate in TestDifferentialBackendsPublicAPI.
		if opts.Shards == 1 &&
			(fileRes.Transfers != faultRes.Transfers || fileRes.PlanningStats != faultRes.PlanningStats) {
			t.Fatalf("charged accounting diverges under faults:\nfault-free %+v %+v\nfaulted    %+v %+v",
				fileRes.PlanningStats, fileRes.Transfers, faultRes.PlanningStats, faultRes.Transfers)
		}
		checkTransferParity(t, "fuzz faulted", faultRes)
		dev := faultRes.Faults.Device
		if dev.NoSpace != 0 || dev.DeviceDead != 0 || dev.Degraded != 0 {
			t.Fatalf("transient plan reported terminal telemetry: %+v", dev)
		}
	})
}
